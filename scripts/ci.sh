#!/usr/bin/env bash
#===- scripts/ci.sh - Multi-tier continuous integration --------------------===#
#
# Tier 0 (lint): the clang-tidy wall (scripts/lint.sh) — skips cleanly when
# clang-tidy is not installed. Tier 1: the plain build and full test suite
# (the gate every change must hold), plus end-to-end workload smokes
# including the --phase1 predict engine (sound cycles certified, guarded
# ones skipped). Tier 2: the same suite under ASan+UBSan
# (DLF_SANITIZE=address), which is how the sandbox/journal/pool code gets
# its memory-error coverage. Tier 2b: the runtime and scheduler suites under
# ThreadSanitizer (DLF_SANITIZE=thread) — the code that juggles real
# pthreads gets real data-race coverage. Sanitized children run several
# times slower, so those tiers use a reduced per-test timeout rather than
# the suite default. Tier 3 (bench smoke): builds the micro-benchmark
# binaries and runs one short closure case so bench-code rot is caught
# here, not when someone finally reruns scripts/bench.sh.
# Tier 4 (telemetry smoke): a small campaign with --metrics-out and
# --timeline-out; the trace must parse as JSON and the metrics must carry
# the expected dlf_* names — catching export-format rot end to end.
# Tier 5 (chaos smoke): scripts/chaos.sh drives crash-heavy and
# disk-failure-heavy fault plans against the ASan build — injected child
# segv/hangs, a runner SIGKILL after every third committed rep with a
# checked resume, and a mid-campaign journal device death — asserting the
# self-healing invariants (CRC-intact journal prefix, counts identical to
# a fault-free reference, no stray processes) with memory errors fatal.
# Tier 6 (ring): the out-of-process observation path — one execution
# recorded both as a text trace and through the shared-memory event ring,
# asserting dlf-observe's cycle report is equivalent to dlf-analyze's,
# that the dlf_ring_* telemetry flows through both ends, and that
# dlf-observe's launch mode (memfd + DLF_RING=fd:<n>) works end to end.
# Tier 7 (status server): a chaos-seeded campaign run with
# --status-addr 127.0.0.1:0, scraping /healthz, /metrics, and /status
# mid-run (curl, or python3 urllib when curl is absent), validating the
# status JSON invariants, then asserting the final report and journal are
# byte-identical to a server-less run of the same campaign (modulo the
# run-dependent wall-clock fields).
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 0: clang-tidy lint wall =="
scripts/lint.sh "$JOBS"

echo "== tier 1: normal build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"
# Widened-alphabet workloads end to end (rwlock modes, cond-wait
# reacquire): both phases, deterministic confirmation.
build/src/dlf-run rwlock-abba --reps 5 --seed 1 >/dev/null
build/src/dlf-run condvar-hybrid --reps 5 --seed 1 >/dev/null
# Sync-preserving prediction smoke: the predict engine must certify both
# known-real registry deadlocks and discharge the gate-protected one
# without spending phase 2 budget on it.
PREDICTDIR="$(mktemp -d)"
build/src/dlf-run rwlock-abba --campaign --phase1 predict --reps 3 \
  --journal "$PREDICTDIR/rwlock.jsonl" | grep -q 'PREDICTED-SOUND'
build/src/dlf-run condvar-hybrid --campaign --phase1 predict --reps 3 \
  --journal "$PREDICTDIR/condvar.jsonl" | grep -q 'PREDICTED-SOUND'
build/src/dlf-run guarded --campaign --phase1 predict --reps 3 \
  --journal "$PREDICTDIR/guarded.jsonl" | grep -q 'reps executed 0'
rm -rf "$PREDICTDIR"

echo "== tier 2: ASan+UBSan build + full test suite =="
cmake -B build-asan -S . -DDLF_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS"
# Sanitized watchdog/hang tests run slower; cap each test instead of
# letting a wedged sanitized child stall the whole pipeline.
ctest --test-dir build-asan --output-on-failure -j "$JOBS" --timeout 90

echo "== tier 2b: TSan build + runtime/scheduler suites =="
cmake -B build-tsan -S . -DDLF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  runtime_test scheduler_test parallel_closure_test ring_test predict_test \
  status_server_test dlf-run
build-tsan/tests/runtime_test
build-tsan/tests/scheduler_test
build-tsan/tests/parallel_closure_test
# The sharded verdict workers under TSan: the shared trace index is
# read-only and the per-worker closure state must never alias.
build-tsan/tests/predict_test
# The lock-free ring writer/reader under TSan: the seqlock stamps, the
# cached head/tail refreshes, and the cross-shard merge must be race-free.
build-tsan/tests/ring_test
# The status server under TSan: concurrent scrapes racing live publishes
# across the publisher/server-thread seam.
build-tsan/tests/status_server_test
# The rwlock/condvar instrumentation paths under TSan: shared-mode
# bookkeeping and the wakeup/reacquire handoff must be race-free.
build-tsan/src/dlf-run rwlock-abba --reps 3 --seed 1 >/dev/null
build-tsan/src/dlf-run condvar-hybrid --reps 3 --seed 1 >/dev/null

echo "== tier 3: bench smoke (build + one short closure case) =="
cmake --build build -j "$JOBS" --target \
  micro_igoodlock micro_abstraction micro_scheduler micro_analysis \
  micro_predict
build/bench/micro_igoodlock \
  --benchmark_filter='BM_ClosureParallelJobs/6/4' \
  --benchmark_min_time=0.02
build/bench/micro_analysis \
  --benchmark_filter='BM_GuardPrune' --benchmark_min_time=0.02
build/bench/micro_predict \
  --benchmark_filter='BM_PredictLinear/256' --benchmark_min_time=0.02

echo "== tier 4: telemetry smoke (campaign export formats) =="
TELDIR="$(mktemp -d)"
trap 'rm -rf "$TELDIR"' EXIT
# guarded + --include-guarded is thrash-prone (the gate lock keeps the
# cycle from closing), so the timeline must show thrash instants; dbcp
# covers deadlock-found. --jobs 4 exercises the sidecar merge path.
build/src/dlf-run guarded --campaign --include-guarded --reps 10 --jobs 4 \
  --journal "$TELDIR/guarded.jsonl" \
  --metrics-out "$TELDIR/m.json" --timeline-out "$TELDIR/t.json"
build/src/dlf-run dbcp --campaign --reps 5 --jobs 4 \
  --journal "$TELDIR/dbcp.jsonl" \
  --metrics-out "$TELDIR/m.prom" --metrics-format prom
python3 - "$TELDIR" <<'EOF'
import json, sys

teldir = sys.argv[1]
with open(f"{teldir}/t.json") as f:
    trace = json.load(f)  # must be well-formed JSON
events = trace["traceEvents"]
assert any(e.get("name") == "thrash" for e in events), \
    "no thrash instant on a thrash-prone cycle"
assert any(e.get("ph") == "X" for e in events), "no duration spans"

with open(f"{teldir}/m.json") as f:
    metrics = json.load(f)
required = [
    "dlf_scheduler_pauses_total",
    "dlf_scheduler_thrashes_total",
    "dlf_campaign_reps_total",
    "dlf_igoodlock_cycles_total",
]
for name in required:
    assert name in metrics["counters"], f"missing counter {name}"

prom = open(f"{teldir}/m.prom").read()
for name in ["dlf_scheduler_deadlocks_found_total",
             "dlf_campaign_reps_total",
             "dlf_campaign_rep_wall_ms_bucket{le=\"+Inf\"}"]:
    assert name in prom, f"missing Prometheus metric {name}"
print("== telemetry smoke: formats OK ==")
EOF

echo "== tier 5: chaos smoke (fault injection + self-healing under ASan) =="
scripts/chaos.sh --bin build-asan/src/dlf-run --mode crash
scripts/chaos.sh --bin build-asan/src/dlf-run --mode disk

echo "== tier 6: ring transport (out-of-process observation equivalence) =="
RINGDIR="$(mktemp -d)"
trap 'rm -rf "$TELDIR" "$RINGDIR"' EXIT
# One execution, two recordings: the per-cycle report blocks (and the
# cycle count) from dlf-observe on the ring must equal dlf-analyze on the
# text trace. The closure timing line is run-dependent and excluded.
summarize_cycles() {
  grep -oE '[0-9]+ potential deadlock cycle\(s\)' "$1"
  grep -E '^#|^pruner: |^classification: |^cycle-spec: |^  ' "$1" || true
}
for WORKLOAD in rwlock-abba condvar-hybrid; do
  LD_PRELOAD=build/src/libdlf_preload.so \
    DLF_PRELOAD_TRACE="$RINGDIR/$WORKLOAD.trace" \
    DLF_RING="$RINGDIR/$WORKLOAD.ring" \
    DLF_METRICS_SIDECAR="$RINGDIR/$WORKLOAD.sidecar.json" \
    build/tests/preload_ring_work "$WORKLOAD"
  build/src/dlf-analyze "$RINGDIR/$WORKLOAD.trace" \
    > "$RINGDIR/$WORKLOAD.analyze.out" 2>/dev/null
  build/src/dlf-observe "$RINGDIR/$WORKLOAD.ring" \
    --metrics-out "$RINGDIR/$WORKLOAD.metrics.json" \
    > "$RINGDIR/$WORKLOAD.observe.out" 2>/dev/null
  summarize_cycles "$RINGDIR/$WORKLOAD.analyze.out" \
    > "$RINGDIR/$WORKLOAD.analyze.cycles"
  summarize_cycles "$RINGDIR/$WORKLOAD.observe.out" \
    > "$RINGDIR/$WORKLOAD.observe.cycles"
  diff -u "$RINGDIR/$WORKLOAD.analyze.cycles" \
          "$RINGDIR/$WORKLOAD.observe.cycles" \
    || { echo "ring/text cycle reports diverge for $WORKLOAD"; exit 1; }
  # The ring telemetry counters flow through both ends: the writer's
  # sidecar (per-event ring occupancy and totals) and the observer's
  # --metrics-out (drain accounting).
  grep -q 'dlf_ring_records_total' "$RINGDIR/$WORKLOAD.sidecar.json"
  grep -q 'dlf_ring_drained_total' "$RINGDIR/$WORKLOAD.metrics.json"
  echo "== ring: $WORKLOAD reports equivalent =="
done
# Launch mode end to end: dlf-observe owns the ring on a memfd and hands
# it to the forked target as DLF_RING=fd:<n>.
build/src/dlf-observe --preload build/src/libdlf_preload.so \
  -- build/tests/preload_ring_work rwlock-abba \
  > "$RINGDIR/launch.out" 2>/dev/null
grep -q '1 potential deadlock cycle(s)' "$RINGDIR/launch.out"
echo "== ring: launch mode OK =="

echo "== tier 7: status server (live scrape + server-less equivalence) =="
SRVDIR="$(mktemp -d)"
trap 'rm -rf "$TELDIR" "$RINGDIR" "$SRVDIR"' EXIT
fetch() {
  if command -v curl >/dev/null 2>&1; then
    curl -sSf --max-time 10 "$1"
  else
    python3 -c 'import sys, urllib.request
sys.stdout.write(urllib.request.urlopen(sys.argv[1], timeout=10).read().decode())' "$1"
  fi
}
# Chaos seed 3 injects child crashes/hangs/spawn failures but no journal
# faults, so the journal survives for the equivalence check below.
CAMPAIGN=(build/src/dlf-run dbcp --campaign --chaos 3 --reps 60 --jobs 2
          --run-timeout-ms 300)
"${CAMPAIGN[@]}" --journal "$SRVDIR/ref.jsonl" \
  --metrics-out "$SRVDIR/ref.metrics.json" > "$SRVDIR/ref.out"
"${CAMPAIGN[@]}" --journal "$SRVDIR/live.jsonl" \
  --metrics-out "$SRVDIR/live.metrics.json" \
  --status-addr 127.0.0.1:0 \
  > "$SRVDIR/live.out" 2> "$SRVDIR/live.err" &
LIVE_PID=$!
# Port 0 is ephemeral; the bound port is echoed on stderr before phase 1.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n \
    's|^status server listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' \
    "$SRVDIR/live.err")"
  [ -n "$PORT" ] && break
  sleep 0.05
done
[ -n "$PORT" ] || { echo "no status port echoed"; kill "$LIVE_PID"; exit 1; }
fetch "http://127.0.0.1:$PORT/healthz" | grep -qx 'ok'
fetch "http://127.0.0.1:$PORT/metrics" > "$SRVDIR/scrape.prom"
fetch "http://127.0.0.1:$PORT/status" > "$SRVDIR/scrape.status.json"
grep -q 'dlf_build_info{tool="dlf-run",benchmark="dbcp"} 1' \
  "$SRVDIR/scrape.prom"
python3 - "$SRVDIR/scrape.status.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    st = json.load(f)
assert st["tool"] == "dlf-run", st
assert st["benchmark"] == "dbcp", st
assert st["phase"] in ("phase1", "phase2", "done", "interrupted"), st
prog = st["progress"]
done = sum(c["reps_done"] for c in st.get("cycles", []))
assert done == prog["reps_committed"], (done, prog)
assert prog["reps_committed"] <= prog["reps_total"] or \
    prog["reps_total"] == 0, prog
print(f"== status scrape OK: phase={st['phase']} "
      f"committed={prog['reps_committed']} ==")
EOF
wait "$LIVE_PID"
# The server must not perturb the campaign: the final report is identical
# modulo the wall-clock throughput line (and the metrics confirmation
# line, which embeds the differing output path), and the journals are
# identical modulo per-rep timing fields (stripping them invalidates the
# line CRC, so compare canonicalized JSON, not bytes).
grep -vE '^(throughput: |metrics written to )' "$SRVDIR/ref.out" \
  > "$SRVDIR/ref.counts"
grep -vE '^(throughput: |metrics written to )' "$SRVDIR/live.out" \
  > "$SRVDIR/live.counts"
diff -u "$SRVDIR/ref.counts" "$SRVDIR/live.counts" \
  || { echo "status server perturbed the campaign report"; exit 1; }
python3 - "$SRVDIR/ref.jsonl" "$SRVDIR/live.jsonl" <<'EOF'
import json, sys

def canon(path):
    out = []
    for line in open(path):
        doc = json.loads(line.split("\t")[0])
        for key in ("wall_ms", "cpu_ms", "diag"):
            doc.pop(key, None)
        out.append(json.dumps(doc, sort_keys=True))
    return out

ref, live = canon(sys.argv[1]), canon(sys.argv[2])
assert ref == live, "journals diverge between server-less and live runs"
print(f"== journals equivalent ({len(ref)} records) ==")
EOF
echo "== status server: live scrape OK, server-less equivalence holds =="

echo "== ci: all tiers passed =="
