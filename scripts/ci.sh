#!/usr/bin/env bash
#===- scripts/ci.sh - Five-tier continuous integration ---------------------===#
#
# Tier 0 (lint): the clang-tidy wall (scripts/lint.sh) — skips cleanly when
# clang-tidy is not installed. Tier 1: the plain build and full test suite
# (the gate every change must hold). Tier 2: the same suite under ASan+UBSan
# (DLF_SANITIZE=address), which is how the sandbox/journal/pool code gets
# its memory-error coverage. Tier 2b: the runtime and scheduler suites under
# ThreadSanitizer (DLF_SANITIZE=thread) — the code that juggles real
# pthreads gets real data-race coverage. Sanitized children run several
# times slower, so those tiers use a reduced per-test timeout rather than
# the suite default. Tier 3 (bench smoke): builds the micro-benchmark
# binaries and runs one short closure case so bench-code rot is caught
# here, not when someone finally reruns scripts/bench.sh.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 0: clang-tidy lint wall =="
scripts/lint.sh "$JOBS"

echo "== tier 1: normal build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier 2: ASan+UBSan build + full test suite =="
cmake -B build-asan -S . -DDLF_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS"
# Sanitized watchdog/hang tests run slower; cap each test instead of
# letting a wedged sanitized child stall the whole pipeline.
ctest --test-dir build-asan --output-on-failure -j "$JOBS" --timeout 90

echo "== tier 2b: TSan build + runtime/scheduler suites =="
cmake -B build-tsan -S . -DDLF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  runtime_test scheduler_test parallel_closure_test
build-tsan/tests/runtime_test
build-tsan/tests/scheduler_test
build-tsan/tests/parallel_closure_test

echo "== tier 3: bench smoke (build + one short closure case) =="
cmake --build build -j "$JOBS" --target \
  micro_igoodlock micro_abstraction micro_scheduler micro_analysis
build/bench/micro_igoodlock \
  --benchmark_filter='BM_ClosureParallelJobs/6/4' \
  --benchmark_min_time=0.02
build/bench/micro_analysis \
  --benchmark_filter='BM_GuardPrune' --benchmark_min_time=0.02

echo "== ci: all tiers passed =="
