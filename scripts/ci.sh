#!/usr/bin/env bash
#===- scripts/ci.sh - Three-tier continuous integration --------------------===#
#
# Tier 1: the plain build and full test suite (the gate every change must
# hold). Tier 2: the same suite under ASan+UBSan (DLF_SANITIZE=ON), which
# is how the sandbox/journal/pool code gets its memory-error coverage.
# Sanitized children run several times slower, so that tier uses a reduced
# per-test timeout rather than the suite default. Tier 3 (bench smoke):
# builds the micro-benchmark binaries and runs one short closure case so
# bench-code rot is caught here, not when someone finally reruns
# scripts/bench.sh.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 1: normal build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier 2: ASan+UBSan build + full test suite =="
cmake -B build-asan -S . -DDLF_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS"
# Sanitized watchdog/hang tests run slower; cap each test instead of
# letting a wedged sanitized child stall the whole pipeline.
ctest --test-dir build-asan --output-on-failure -j "$JOBS" --timeout 90

echo "== tier 3: bench smoke (build + one short closure case) =="
cmake --build build -j "$JOBS" --target \
  micro_igoodlock micro_abstraction micro_scheduler
build/bench/micro_igoodlock \
  --benchmark_filter='BM_ClosureParallelJobs/6/4' \
  --benchmark_min_time=0.02

echo "== ci: all tiers passed =="
