#!/usr/bin/env bash
#===- scripts/ci.sh - Seven-tier continuous integration --------------------===#
#
# Tier 0 (lint): the clang-tidy wall (scripts/lint.sh) — skips cleanly when
# clang-tidy is not installed. Tier 1: the plain build and full test suite
# (the gate every change must hold), plus end-to-end workload smokes
# including the --phase1 predict engine (sound cycles certified, guarded
# ones skipped). Tier 2: the same suite under ASan+UBSan
# (DLF_SANITIZE=address), which is how the sandbox/journal/pool code gets
# its memory-error coverage. Tier 2b: the runtime and scheduler suites under
# ThreadSanitizer (DLF_SANITIZE=thread) — the code that juggles real
# pthreads gets real data-race coverage. Sanitized children run several
# times slower, so those tiers use a reduced per-test timeout rather than
# the suite default. Tier 3 (bench smoke): builds the micro-benchmark
# binaries and runs one short closure case so bench-code rot is caught
# here, not when someone finally reruns scripts/bench.sh.
# Tier 4 (telemetry smoke): a small campaign with --metrics-out and
# --timeline-out; the trace must parse as JSON and the metrics must carry
# the expected dlf_* names — catching export-format rot end to end.
# Tier 5 (chaos smoke): scripts/chaos.sh drives crash-heavy and
# disk-failure-heavy fault plans against the ASan build — injected child
# segv/hangs, a runner SIGKILL after every third committed rep with a
# checked resume, and a mid-campaign journal device death — asserting the
# self-healing invariants (CRC-intact journal prefix, counts identical to
# a fault-free reference, no stray processes) with memory errors fatal.
# Tier 6 (ring): the out-of-process observation path — one execution
# recorded both as a text trace and through the shared-memory event ring,
# asserting dlf-observe's cycle report is equivalent to dlf-analyze's,
# that the dlf_ring_* telemetry flows through both ends, and that
# dlf-observe's launch mode (memfd + DLF_RING=fd:<n>) works end to end.
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier 0: clang-tidy lint wall =="
scripts/lint.sh "$JOBS"

echo "== tier 1: normal build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"
# Widened-alphabet workloads end to end (rwlock modes, cond-wait
# reacquire): both phases, deterministic confirmation.
build/src/dlf-run rwlock-abba --reps 5 --seed 1 >/dev/null
build/src/dlf-run condvar-hybrid --reps 5 --seed 1 >/dev/null
# Sync-preserving prediction smoke: the predict engine must certify both
# known-real registry deadlocks and discharge the gate-protected one
# without spending phase 2 budget on it.
PREDICTDIR="$(mktemp -d)"
build/src/dlf-run rwlock-abba --campaign --phase1 predict --reps 3 \
  --journal "$PREDICTDIR/rwlock.jsonl" | grep -q 'PREDICTED-SOUND'
build/src/dlf-run condvar-hybrid --campaign --phase1 predict --reps 3 \
  --journal "$PREDICTDIR/condvar.jsonl" | grep -q 'PREDICTED-SOUND'
build/src/dlf-run guarded --campaign --phase1 predict --reps 3 \
  --journal "$PREDICTDIR/guarded.jsonl" | grep -q 'reps executed 0'
rm -rf "$PREDICTDIR"

echo "== tier 2: ASan+UBSan build + full test suite =="
cmake -B build-asan -S . -DDLF_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS"
# Sanitized watchdog/hang tests run slower; cap each test instead of
# letting a wedged sanitized child stall the whole pipeline.
ctest --test-dir build-asan --output-on-failure -j "$JOBS" --timeout 90

echo "== tier 2b: TSan build + runtime/scheduler suites =="
cmake -B build-tsan -S . -DDLF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  runtime_test scheduler_test parallel_closure_test ring_test predict_test \
  dlf-run
build-tsan/tests/runtime_test
build-tsan/tests/scheduler_test
build-tsan/tests/parallel_closure_test
# The sharded verdict workers under TSan: the shared trace index is
# read-only and the per-worker closure state must never alias.
build-tsan/tests/predict_test
# The lock-free ring writer/reader under TSan: the seqlock stamps, the
# cached head/tail refreshes, and the cross-shard merge must be race-free.
build-tsan/tests/ring_test
# The rwlock/condvar instrumentation paths under TSan: shared-mode
# bookkeeping and the wakeup/reacquire handoff must be race-free.
build-tsan/src/dlf-run rwlock-abba --reps 3 --seed 1 >/dev/null
build-tsan/src/dlf-run condvar-hybrid --reps 3 --seed 1 >/dev/null

echo "== tier 3: bench smoke (build + one short closure case) =="
cmake --build build -j "$JOBS" --target \
  micro_igoodlock micro_abstraction micro_scheduler micro_analysis \
  micro_predict
build/bench/micro_igoodlock \
  --benchmark_filter='BM_ClosureParallelJobs/6/4' \
  --benchmark_min_time=0.02
build/bench/micro_analysis \
  --benchmark_filter='BM_GuardPrune' --benchmark_min_time=0.02
build/bench/micro_predict \
  --benchmark_filter='BM_PredictLinear/256' --benchmark_min_time=0.02

echo "== tier 4: telemetry smoke (campaign export formats) =="
TELDIR="$(mktemp -d)"
trap 'rm -rf "$TELDIR"' EXIT
# guarded + --include-guarded is thrash-prone (the gate lock keeps the
# cycle from closing), so the timeline must show thrash instants; dbcp
# covers deadlock-found. --jobs 4 exercises the sidecar merge path.
build/src/dlf-run guarded --campaign --include-guarded --reps 10 --jobs 4 \
  --journal "$TELDIR/guarded.jsonl" \
  --metrics-out "$TELDIR/m.json" --timeline-out "$TELDIR/t.json"
build/src/dlf-run dbcp --campaign --reps 5 --jobs 4 \
  --journal "$TELDIR/dbcp.jsonl" \
  --metrics-out "$TELDIR/m.prom" --metrics-format prom
python3 - "$TELDIR" <<'EOF'
import json, sys

teldir = sys.argv[1]
with open(f"{teldir}/t.json") as f:
    trace = json.load(f)  # must be well-formed JSON
events = trace["traceEvents"]
assert any(e.get("name") == "thrash" for e in events), \
    "no thrash instant on a thrash-prone cycle"
assert any(e.get("ph") == "X" for e in events), "no duration spans"

with open(f"{teldir}/m.json") as f:
    metrics = json.load(f)
required = [
    "dlf_scheduler_pauses_total",
    "dlf_scheduler_thrashes_total",
    "dlf_campaign_reps_total",
    "dlf_igoodlock_cycles_total",
]
for name in required:
    assert name in metrics["counters"], f"missing counter {name}"

prom = open(f"{teldir}/m.prom").read()
for name in ["dlf_scheduler_deadlocks_found_total",
             "dlf_campaign_reps_total",
             "dlf_campaign_rep_wall_ms_bucket{le=\"+Inf\"}"]:
    assert name in prom, f"missing Prometheus metric {name}"
print("== telemetry smoke: formats OK ==")
EOF

echo "== tier 5: chaos smoke (fault injection + self-healing under ASan) =="
scripts/chaos.sh --bin build-asan/src/dlf-run --mode crash
scripts/chaos.sh --bin build-asan/src/dlf-run --mode disk

echo "== tier 6: ring transport (out-of-process observation equivalence) =="
RINGDIR="$(mktemp -d)"
trap 'rm -rf "$TELDIR" "$RINGDIR"' EXIT
# One execution, two recordings: the per-cycle report blocks (and the
# cycle count) from dlf-observe on the ring must equal dlf-analyze on the
# text trace. The closure timing line is run-dependent and excluded.
summarize_cycles() {
  grep -oE '[0-9]+ potential deadlock cycle\(s\)' "$1"
  grep -E '^#|^pruner: |^classification: |^cycle-spec: |^  ' "$1" || true
}
for WORKLOAD in rwlock-abba condvar-hybrid; do
  LD_PRELOAD=build/src/libdlf_preload.so \
    DLF_PRELOAD_TRACE="$RINGDIR/$WORKLOAD.trace" \
    DLF_RING="$RINGDIR/$WORKLOAD.ring" \
    DLF_METRICS_SIDECAR="$RINGDIR/$WORKLOAD.sidecar.json" \
    build/tests/preload_ring_work "$WORKLOAD"
  build/src/dlf-analyze "$RINGDIR/$WORKLOAD.trace" \
    > "$RINGDIR/$WORKLOAD.analyze.out" 2>/dev/null
  build/src/dlf-observe "$RINGDIR/$WORKLOAD.ring" \
    --metrics-out "$RINGDIR/$WORKLOAD.metrics.json" \
    > "$RINGDIR/$WORKLOAD.observe.out" 2>/dev/null
  summarize_cycles "$RINGDIR/$WORKLOAD.analyze.out" \
    > "$RINGDIR/$WORKLOAD.analyze.cycles"
  summarize_cycles "$RINGDIR/$WORKLOAD.observe.out" \
    > "$RINGDIR/$WORKLOAD.observe.cycles"
  diff -u "$RINGDIR/$WORKLOAD.analyze.cycles" \
          "$RINGDIR/$WORKLOAD.observe.cycles" \
    || { echo "ring/text cycle reports diverge for $WORKLOAD"; exit 1; }
  # The ring telemetry counters flow through both ends: the writer's
  # sidecar (per-event ring occupancy and totals) and the observer's
  # --metrics-out (drain accounting).
  grep -q 'dlf_ring_records_total' "$RINGDIR/$WORKLOAD.sidecar.json"
  grep -q 'dlf_ring_drained_total' "$RINGDIR/$WORKLOAD.metrics.json"
  echo "== ring: $WORKLOAD reports equivalent =="
done
# Launch mode end to end: dlf-observe owns the ring on a memfd and hands
# it to the forked target as DLF_RING=fd:<n>.
build/src/dlf-observe --preload build/src/libdlf_preload.so \
  -- build/tests/preload_ring_work rwlock-abba \
  > "$RINGDIR/launch.out" 2>/dev/null
grep -q '1 potential deadlock cycle(s)' "$RINGDIR/launch.out"
echo "== ring: launch mode OK =="

echo "== ci: all tiers passed =="
