#!/usr/bin/env bash
#===- scripts/lint.sh - clang-tidy lint wall over src/ ---------------------===#
#
# Runs the .clang-tidy check set (bugprone-*, concurrency-*, performance-*,
# narrowing conversions) over every translation unit in src/, using a
# compile_commands.json exported into build-lint/. Findings are errors
# (WarningsAsErrors: '*'), so a clean exit means a clean tree. The find
# below globs all of src/ recursively, so new subsystems (ring/, the
# analysis/Predict engine, campaign/) are covered the moment they land —
# no per-directory opt-in to forget.
#
# clang-tidy is optional tooling: when it is not installed (the pinned CI
# image ships gcc only), the script says so and exits 0 so ci.sh still runs
# end to end — the wall enforces only where the tool exists.
#
# Usage: scripts/lint.sh [jobs]   (default: nproc)
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not installed; skipping (install clang-tidy to enforce the lint wall)"
  exit 0
fi

cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

FILES=$(find src -name '*.cpp' | sort)
echo "lint: clang-tidy over $(echo "$FILES" | wc -l) files, $JOBS job(s)"

STATUS=0
# xargs -P fans the (slow) single-file invocations out; a nonzero status from
# any file fails the wall.
echo "$FILES" | xargs -P "$JOBS" -n 1 \
  clang-tidy -p build-lint --quiet || STATUS=$?

if [ "$STATUS" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: clean"
