#!/usr/bin/env bash
#===- scripts/bench.sh - micro-benchmark baselines --------------------------===#
#
# Builds the bench binaries and runs every micro-benchmark with
# --benchmark_format=json, writing one baseline file per binary at the repo
# root (BENCH_igoodlock.json, BENCH_abstraction.json, BENCH_scheduler.json,
# BENCH_analysis.json).
# The JSON files are checked in so perf changes show up as reviewable
# diffs; re-run this script after touching the closure, the abstraction
# machinery, or the scheduler, and commit the new numbers alongside the
# change. Absolute times are machine-dependent — compare ratios, not
# values, across machines.
#
# Usage: scripts/bench.sh [min_time]
#   min_time: google-benchmark --benchmark_min_time value (default 0.1;
#             plain seconds as a bare number — older benchmark releases
#             reject the "0.1s" suffix form).
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
MIN_TIME="${1:-0.1}"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target \
  micro_igoodlock micro_abstraction micro_scheduler micro_analysis

for NAME in igoodlock abstraction scheduler analysis; do
  BIN="build/bench/micro_${NAME}"
  OUT="BENCH_${NAME}.json"
  echo "== ${BIN} -> ${OUT} =="
  "${BIN}" --benchmark_format=json \
           --benchmark_min_time="${MIN_TIME}" > "${OUT}"
done

echo "== bench: baselines written =="
