#!/usr/bin/env bash
#===- scripts/bench.sh - micro-benchmark baselines --------------------------===#
#
# Builds the bench binaries and runs every micro-benchmark with
# --benchmark_format=json, writing one baseline file per binary at the repo
# root (BENCH_igoodlock.json, BENCH_abstraction.json, BENCH_scheduler.json,
# BENCH_analysis.json, BENCH_predict.json, BENCH_ring.json,
# BENCH_serve.json).
# The JSON files are checked in so perf changes show up as reviewable
# diffs; re-run this script after touching the closure, the abstraction
# machinery, or the scheduler, and commit the new numbers alongside the
# change. Absolute times are machine-dependent — compare ratios, not
# values, across machines.
#
# Usage: scripts/bench.sh [min_time]
#   min_time: google-benchmark --benchmark_min_time value (default 0.1;
#             plain seconds as a bare number — older benchmark releases
#             reject the "0.1s" suffix form).
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
MIN_TIME="${1:-0.1}"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target \
  micro_igoodlock micro_abstraction micro_scheduler micro_analysis \
  micro_predict micro_ring micro_serve

for NAME in igoodlock abstraction scheduler analysis predict ring serve; do
  BIN="build/bench/micro_${NAME}"
  OUT="BENCH_${NAME}.json"
  echo "== ${BIN} -> ${OUT} =="
  "${BIN}" --benchmark_format=json \
           --benchmark_min_time="${MIN_TIME}" > "${OUT}"
done

# Merge every per-binary baseline into one flat name -> ns/op map; a
# single file to eyeball (or diff) for the whole suite.
python3 - <<'EOF'
import json

summary = {}
for name in ["igoodlock", "abstraction", "scheduler", "analysis", "predict",
             "ring", "serve"]:
    with open(f"BENCH_{name}.json") as f:
        doc = json.load(f)
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        ns = bench["real_time"]
        unit = bench.get("time_unit", "ns")
        ns *= {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        summary[bench["name"]] = round(ns, 2)

with open("BENCH_summary.json", "w") as f:
    json.dump(summary, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"== bench: BENCH_summary.json ({len(summary)} benchmarks) ==")
EOF

echo "== bench: baselines written =="
