# Empty dependencies file for hb_ablation.
# This may be replaced when dependencies are built.
