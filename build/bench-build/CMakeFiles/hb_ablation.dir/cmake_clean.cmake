file(REMOVE_RECURSE
  "../bench/hb_ablation"
  "../bench/hb_ablation.pdb"
  "CMakeFiles/hb_ablation.dir/HbAblation.cpp.o"
  "CMakeFiles/hb_ablation.dir/HbAblation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
