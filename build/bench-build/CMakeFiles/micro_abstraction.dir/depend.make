# Empty dependencies file for micro_abstraction.
# This may be replaced when dependencies are built.
