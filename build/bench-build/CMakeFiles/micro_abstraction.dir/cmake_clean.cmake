file(REMOVE_RECURSE
  "../bench/micro_abstraction"
  "../bench/micro_abstraction.pdb"
  "CMakeFiles/micro_abstraction.dir/MicroAbstraction.cpp.o"
  "CMakeFiles/micro_abstraction.dir/MicroAbstraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
