file(REMOVE_RECURSE
  "../bench/motivation_systematic"
  "../bench/motivation_systematic.pdb"
  "CMakeFiles/motivation_systematic.dir/MotivationSystematic.cpp.o"
  "CMakeFiles/motivation_systematic.dir/MotivationSystematic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_systematic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
