# Empty compiler generated dependencies file for motivation_systematic.
# This may be replaced when dependencies are built.
