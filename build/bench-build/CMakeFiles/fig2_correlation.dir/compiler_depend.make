# Empty compiler generated dependencies file for fig2_correlation.
# This may be replaced when dependencies are built.
