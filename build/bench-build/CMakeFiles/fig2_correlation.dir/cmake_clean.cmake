file(REMOVE_RECURSE
  "../bench/fig2_correlation"
  "../bench/fig2_correlation.pdb"
  "CMakeFiles/fig2_correlation.dir/Fig2Correlation.cpp.o"
  "CMakeFiles/fig2_correlation.dir/Fig2Correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
