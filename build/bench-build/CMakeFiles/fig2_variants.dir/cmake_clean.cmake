file(REMOVE_RECURSE
  "../bench/fig2_variants"
  "../bench/fig2_variants.pdb"
  "CMakeFiles/fig2_variants.dir/Fig2Variants.cpp.o"
  "CMakeFiles/fig2_variants.dir/Fig2Variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
