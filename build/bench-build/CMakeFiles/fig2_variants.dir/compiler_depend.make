# Empty compiler generated dependencies file for fig2_variants.
# This may be replaced when dependencies are built.
