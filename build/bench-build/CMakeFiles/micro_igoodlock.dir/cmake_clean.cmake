file(REMOVE_RECURSE
  "../bench/micro_igoodlock"
  "../bench/micro_igoodlock.pdb"
  "CMakeFiles/micro_igoodlock.dir/MicroIGoodlock.cpp.o"
  "CMakeFiles/micro_igoodlock.dir/MicroIGoodlock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_igoodlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
