# Empty compiler generated dependencies file for micro_igoodlock.
# This may be replaced when dependencies are built.
