# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/substrate_integration_test[1]_include.cmake")
include("/root/repo/build/tests/preload_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/abstraction_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/igoodlock_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/primitives_test[1]_include.cmake")
include("/root/repo/build/tests/substrate_unit_test[1]_include.cmake")
include("/root/repo/build/tests/immunity_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/variants_test[1]_include.cmake")
include("/root/repo/build/tests/systematic_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/tool_test[1]_include.cmake")
include("/root/repo/build/tests/goodlock_differential_test[1]_include.cmake")
include("/root/repo/build/tests/happens_before_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_api_test[1]_include.cmake")
