file(REMOVE_RECURSE
  "CMakeFiles/happens_before_test.dir/HappensBeforeTest.cpp.o"
  "CMakeFiles/happens_before_test.dir/HappensBeforeTest.cpp.o.d"
  "happens_before_test"
  "happens_before_test.pdb"
  "happens_before_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/happens_before_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
