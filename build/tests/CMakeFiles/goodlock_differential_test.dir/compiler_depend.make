# Empty compiler generated dependencies file for goodlock_differential_test.
# This may be replaced when dependencies are built.
