# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for goodlock_differential_test.
