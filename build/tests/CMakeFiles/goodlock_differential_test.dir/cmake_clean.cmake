file(REMOVE_RECURSE
  "CMakeFiles/goodlock_differential_test.dir/GoodlockDifferentialTest.cpp.o"
  "CMakeFiles/goodlock_differential_test.dir/GoodlockDifferentialTest.cpp.o.d"
  "goodlock_differential_test"
  "goodlock_differential_test.pdb"
  "goodlock_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goodlock_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
