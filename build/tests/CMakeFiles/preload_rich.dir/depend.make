# Empty dependencies file for preload_rich.
# This may be replaced when dependencies are built.
