file(REMOVE_RECURSE
  "CMakeFiles/preload_rich.dir/fixtures/PreloadRich.cpp.o"
  "CMakeFiles/preload_rich.dir/fixtures/PreloadRich.cpp.o.d"
  "preload_rich"
  "preload_rich.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preload_rich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
