file(REMOVE_RECURSE
  "CMakeFiles/strategy_api_test.dir/StrategyApiTest.cpp.o"
  "CMakeFiles/strategy_api_test.dir/StrategyApiTest.cpp.o.d"
  "strategy_api_test"
  "strategy_api_test.pdb"
  "strategy_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
