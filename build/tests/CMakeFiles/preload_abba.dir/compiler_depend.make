# Empty compiler generated dependencies file for preload_abba.
# This may be replaced when dependencies are built.
