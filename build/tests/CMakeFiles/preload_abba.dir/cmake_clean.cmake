file(REMOVE_RECURSE
  "CMakeFiles/preload_abba.dir/fixtures/PreloadAbba.cpp.o"
  "CMakeFiles/preload_abba.dir/fixtures/PreloadAbba.cpp.o.d"
  "preload_abba"
  "preload_abba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preload_abba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
