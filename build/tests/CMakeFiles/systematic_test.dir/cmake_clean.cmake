file(REMOVE_RECURSE
  "CMakeFiles/systematic_test.dir/SystematicTest.cpp.o"
  "CMakeFiles/systematic_test.dir/SystematicTest.cpp.o.d"
  "systematic_test"
  "systematic_test.pdb"
  "systematic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systematic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
