# Empty dependencies file for substrate_unit_test.
# This may be replaced when dependencies are built.
