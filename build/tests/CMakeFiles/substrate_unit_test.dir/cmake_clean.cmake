file(REMOVE_RECURSE
  "CMakeFiles/substrate_unit_test.dir/SubstrateUnitTest.cpp.o"
  "CMakeFiles/substrate_unit_test.dir/SubstrateUnitTest.cpp.o.d"
  "substrate_unit_test"
  "substrate_unit_test.pdb"
  "substrate_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
