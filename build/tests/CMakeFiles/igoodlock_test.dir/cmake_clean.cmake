file(REMOVE_RECURSE
  "CMakeFiles/igoodlock_test.dir/IGoodlockTest.cpp.o"
  "CMakeFiles/igoodlock_test.dir/IGoodlockTest.cpp.o.d"
  "igoodlock_test"
  "igoodlock_test.pdb"
  "igoodlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igoodlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
