# Empty dependencies file for igoodlock_test.
# This may be replaced when dependencies are built.
