# Empty dependencies file for immunity_test.
# This may be replaced when dependencies are built.
