file(REMOVE_RECURSE
  "CMakeFiles/immunity_test.dir/ImmunityTest.cpp.o"
  "CMakeFiles/immunity_test.dir/ImmunityTest.cpp.o.d"
  "immunity_test"
  "immunity_test.pdb"
  "immunity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/immunity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
