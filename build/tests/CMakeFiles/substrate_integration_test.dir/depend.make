# Empty dependencies file for substrate_integration_test.
# This may be replaced when dependencies are built.
