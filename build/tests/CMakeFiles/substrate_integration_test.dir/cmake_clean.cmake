file(REMOVE_RECURSE
  "CMakeFiles/substrate_integration_test.dir/SubstrateIntegrationTest.cpp.o"
  "CMakeFiles/substrate_integration_test.dir/SubstrateIntegrationTest.cpp.o.d"
  "substrate_integration_test"
  "substrate_integration_test.pdb"
  "substrate_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
