file(REMOVE_RECURSE
  "CMakeFiles/dlf-run.dir/tools/DlfRun.cpp.o"
  "CMakeFiles/dlf-run.dir/tools/DlfRun.cpp.o.d"
  "dlf-run"
  "dlf-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlf-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
