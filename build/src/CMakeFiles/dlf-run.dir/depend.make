# Empty dependencies file for dlf-run.
# This may be replaced when dependencies are built.
