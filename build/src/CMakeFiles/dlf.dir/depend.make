# Empty dependencies file for dlf.
# This may be replaced when dependencies are built.
