
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abstraction/AbstractionEngine.cpp" "src/CMakeFiles/dlf.dir/abstraction/AbstractionEngine.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/abstraction/AbstractionEngine.cpp.o.d"
  "/root/repo/src/abstraction/CreationMap.cpp" "src/CMakeFiles/dlf.dir/abstraction/CreationMap.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/abstraction/CreationMap.cpp.o.d"
  "/root/repo/src/abstraction/ExecutionIndex.cpp" "src/CMakeFiles/dlf.dir/abstraction/ExecutionIndex.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/abstraction/ExecutionIndex.cpp.o.d"
  "/root/repo/src/event/Abstraction.cpp" "src/CMakeFiles/dlf.dir/event/Abstraction.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/event/Abstraction.cpp.o.d"
  "/root/repo/src/event/Label.cpp" "src/CMakeFiles/dlf.dir/event/Label.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/event/Label.cpp.o.d"
  "/root/repo/src/event/VectorClock.cpp" "src/CMakeFiles/dlf.dir/event/VectorClock.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/event/VectorClock.cpp.o.d"
  "/root/repo/src/fuzzer/ActiveTester.cpp" "src/CMakeFiles/dlf.dir/fuzzer/ActiveTester.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/fuzzer/ActiveTester.cpp.o.d"
  "/root/repo/src/fuzzer/CycleSpec.cpp" "src/CMakeFiles/dlf.dir/fuzzer/CycleSpec.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/fuzzer/CycleSpec.cpp.o.d"
  "/root/repo/src/fuzzer/DeadlockFuzzerStrategy.cpp" "src/CMakeFiles/dlf.dir/fuzzer/DeadlockFuzzerStrategy.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/fuzzer/DeadlockFuzzerStrategy.cpp.o.d"
  "/root/repo/src/fuzzer/RandomStrategy.cpp" "src/CMakeFiles/dlf.dir/fuzzer/RandomStrategy.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/fuzzer/RandomStrategy.cpp.o.d"
  "/root/repo/src/fuzzer/RealDeadlockChecker.cpp" "src/CMakeFiles/dlf.dir/fuzzer/RealDeadlockChecker.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/fuzzer/RealDeadlockChecker.cpp.o.d"
  "/root/repo/src/fuzzer/Strategy.cpp" "src/CMakeFiles/dlf.dir/fuzzer/Strategy.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/fuzzer/Strategy.cpp.o.d"
  "/root/repo/src/fuzzer/Systematic.cpp" "src/CMakeFiles/dlf.dir/fuzzer/Systematic.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/fuzzer/Systematic.cpp.o.d"
  "/root/repo/src/igoodlock/ClassicGoodlock.cpp" "src/CMakeFiles/dlf.dir/igoodlock/ClassicGoodlock.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/igoodlock/ClassicGoodlock.cpp.o.d"
  "/root/repo/src/igoodlock/IGoodlock.cpp" "src/CMakeFiles/dlf.dir/igoodlock/IGoodlock.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/igoodlock/IGoodlock.cpp.o.d"
  "/root/repo/src/igoodlock/LockDependency.cpp" "src/CMakeFiles/dlf.dir/igoodlock/LockDependency.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/igoodlock/LockDependency.cpp.o.d"
  "/root/repo/src/igoodlock/Report.cpp" "src/CMakeFiles/dlf.dir/igoodlock/Report.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/igoodlock/Report.cpp.o.d"
  "/root/repo/src/igoodlock/Serialize.cpp" "src/CMakeFiles/dlf.dir/igoodlock/Serialize.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/igoodlock/Serialize.cpp.o.d"
  "/root/repo/src/runtime/ConditionVariable.cpp" "src/CMakeFiles/dlf.dir/runtime/ConditionVariable.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/runtime/ConditionVariable.cpp.o.d"
  "/root/repo/src/runtime/Mutex.cpp" "src/CMakeFiles/dlf.dir/runtime/Mutex.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/runtime/Mutex.cpp.o.d"
  "/root/repo/src/runtime/Options.cpp" "src/CMakeFiles/dlf.dir/runtime/Options.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/runtime/Options.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/CMakeFiles/dlf.dir/runtime/Runtime.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/runtime/Runtime.cpp.o.d"
  "/root/repo/src/runtime/Scheduler.cpp" "src/CMakeFiles/dlf.dir/runtime/Scheduler.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/runtime/Scheduler.cpp.o.d"
  "/root/repo/src/runtime/Thread.cpp" "src/CMakeFiles/dlf.dir/runtime/Thread.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/runtime/Thread.cpp.o.d"
  "/root/repo/src/support/Debug.cpp" "src/CMakeFiles/dlf.dir/support/Debug.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/support/Debug.cpp.o.d"
  "/root/repo/src/support/Env.cpp" "src/CMakeFiles/dlf.dir/support/Env.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/support/Env.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/dlf.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/support/Rng.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/dlf.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/dlf.dir/support/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
