file(REMOVE_RECURSE
  "libdlf.a"
)
