# Empty dependencies file for dlf-analyze.
# This may be replaced when dependencies are built.
