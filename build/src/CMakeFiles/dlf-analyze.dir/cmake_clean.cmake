file(REMOVE_RECURSE
  "CMakeFiles/dlf-analyze.dir/interpose/Analyze.cpp.o"
  "CMakeFiles/dlf-analyze.dir/interpose/Analyze.cpp.o.d"
  "dlf-analyze"
  "dlf-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlf-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
