file(REMOVE_RECURSE
  "CMakeFiles/dlf_substrates.dir/substrates/BenchmarkRegistry.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/BenchmarkRegistry.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/collections/Harness.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/collections/Harness.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/collections/SyncList.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/collections/SyncList.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/collections/SyncMap.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/collections/SyncMap.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/dbcp/Dbcp.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/dbcp/Dbcp.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/jigsaw/Http.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/jigsaw/Http.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/jigsaw/Jigsaw.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/jigsaw/Jigsaw.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/logging/Logging.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/logging/Logging.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/swing/Swing.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/swing/Swing.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/workloads/Cache4j.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/workloads/Cache4j.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/workloads/Hedc.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/workloads/Hedc.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/workloads/JSpider.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/workloads/JSpider.cpp.o.d"
  "CMakeFiles/dlf_substrates.dir/substrates/workloads/Sor.cpp.o"
  "CMakeFiles/dlf_substrates.dir/substrates/workloads/Sor.cpp.o.d"
  "libdlf_substrates.a"
  "libdlf_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlf_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
