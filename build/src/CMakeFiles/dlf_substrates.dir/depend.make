# Empty dependencies file for dlf_substrates.
# This may be replaced when dependencies are built.
