
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/substrates/BenchmarkRegistry.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/BenchmarkRegistry.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/BenchmarkRegistry.cpp.o.d"
  "/root/repo/src/substrates/collections/Harness.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/collections/Harness.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/collections/Harness.cpp.o.d"
  "/root/repo/src/substrates/collections/SyncList.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/collections/SyncList.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/collections/SyncList.cpp.o.d"
  "/root/repo/src/substrates/collections/SyncMap.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/collections/SyncMap.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/collections/SyncMap.cpp.o.d"
  "/root/repo/src/substrates/dbcp/Dbcp.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/dbcp/Dbcp.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/dbcp/Dbcp.cpp.o.d"
  "/root/repo/src/substrates/jigsaw/Http.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/jigsaw/Http.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/jigsaw/Http.cpp.o.d"
  "/root/repo/src/substrates/jigsaw/Jigsaw.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/jigsaw/Jigsaw.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/jigsaw/Jigsaw.cpp.o.d"
  "/root/repo/src/substrates/logging/Logging.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/logging/Logging.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/logging/Logging.cpp.o.d"
  "/root/repo/src/substrates/swing/Swing.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/swing/Swing.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/swing/Swing.cpp.o.d"
  "/root/repo/src/substrates/workloads/Cache4j.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/workloads/Cache4j.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/workloads/Cache4j.cpp.o.d"
  "/root/repo/src/substrates/workloads/Hedc.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/workloads/Hedc.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/workloads/Hedc.cpp.o.d"
  "/root/repo/src/substrates/workloads/JSpider.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/workloads/JSpider.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/workloads/JSpider.cpp.o.d"
  "/root/repo/src/substrates/workloads/Sor.cpp" "src/CMakeFiles/dlf_substrates.dir/substrates/workloads/Sor.cpp.o" "gcc" "src/CMakeFiles/dlf_substrates.dir/substrates/workloads/Sor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dlf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
