file(REMOVE_RECURSE
  "libdlf_substrates.a"
)
