file(REMOVE_RECURSE
  "CMakeFiles/dlf_preload.dir/interpose/Preload.cpp.o"
  "CMakeFiles/dlf_preload.dir/interpose/Preload.cpp.o.d"
  "libdlf_preload.pdb"
  "libdlf_preload.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlf_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
