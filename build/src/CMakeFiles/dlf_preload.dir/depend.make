# Empty dependencies file for dlf_preload.
# This may be replaced when dependencies are built.
