file(REMOVE_RECURSE
  "CMakeFiles/webserver_shutdown.dir/webserver_shutdown.cpp.o"
  "CMakeFiles/webserver_shutdown.dir/webserver_shutdown.cpp.o.d"
  "webserver_shutdown"
  "webserver_shutdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_shutdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
