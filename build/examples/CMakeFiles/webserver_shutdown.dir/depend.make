# Empty dependencies file for webserver_shutdown.
# This may be replaced when dependencies are built.
