//===- tests/AbstractionTest.cpp - abstraction/ unit tests ------------------===//

#include "abstraction/AbstractionEngine.h"
#include "abstraction/CreationMap.h"
#include "abstraction/ExecutionIndex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

using namespace dlf;

// -- ExecutionIndex: the paper's §2.4.2 example -------------------------------
//
//   1 main() {                     // for (i = 0; i < 5; i++) foo();
//   5 void foo() { bar(); bar(); }
//   9 void bar() { for (i = 0; i < 3; i++) new Object(); }   // line 11
//
// First object:  absI_3 = [11,1, 6,1, 3,1]
// Last object:   absI_3 = [11,3, 7,1, 3,5]

struct PaperExample {
  Label Line3 = Label::intern("paper:3");   // call foo() from main
  Label Line6 = Label::intern("paper:6");   // first call bar() in foo
  Label Line7 = Label::intern("paper:7");   // second call bar() in foo
  Label Line11 = Label::intern("paper:11"); // new Object() in bar

  /// Runs the example, collecting absI_3 of every created object.
  std::vector<Abstraction> run() {
    std::vector<Abstraction> Created;
    IndexingState Index;
    for (int I = 0; I != 5; ++I) {
      Index.onCall(Line3); // main -> foo
      for (Label BarCall : {Line6, Line7}) {
        Index.onCall(BarCall); // foo -> bar
        for (int K = 0; K != 3; ++K)
          Created.push_back(Index.onNew(Line11, 3));
        Index.onReturn();
      }
      Index.onReturn();
    }
    return Created;
  }

  std::vector<uint32_t> abs(Label C1, uint32_t Q1, Label C2, uint32_t Q2,
                            Label C3, uint32_t Q3) {
    return {C1.raw(), Q1, C2.raw(), Q2, C3.raw(), Q3};
  }
};

TEST(ExecutionIndex, PaperExampleFirstObject) {
  PaperExample Example;
  auto Created = Example.run();
  ASSERT_EQ(Created.size(), 30u); // 5 * 2 * 3
  EXPECT_EQ(Created.front().Elements,
            Example.abs(Example.Line11, 1, Example.Line6, 1, Example.Line3,
                        1));
}

TEST(ExecutionIndex, PaperExampleLastObject) {
  PaperExample Example;
  auto Created = Example.run();
  EXPECT_EQ(Created.back().Elements,
            Example.abs(Example.Line11, 3, Example.Line7, 1, Example.Line3,
                        5));
}

TEST(ExecutionIndex, AllThirtyObjectsDistinct) {
  PaperExample Example;
  auto Created = Example.run();
  for (size_t I = 0; I != Created.size(); ++I)
    for (size_t J = I + 1; J != Created.size(); ++J)
      ASSERT_NE(Created[I], Created[J]) << I << " vs " << J;
}

TEST(ExecutionIndex, DeterministicAcrossRuns) {
  // The core cross-execution property: the same control flow produces the
  // same abstractions in a fresh state.
  PaperExample Example;
  auto First = Example.run();
  auto Second = Example.run();
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I != First.size(); ++I)
    ASSERT_EQ(First[I], Second[I]);
}

TEST(ExecutionIndex, ShallowStackReturnsFullStack) {
  IndexingState Index;
  Label Site = Label::intern("shallow:new");
  Abstraction Abs = Index.onNew(Site, 10);
  // Only the creation frame exists.
  EXPECT_EQ(Abs.Elements, (std::vector<uint32_t>{Site.raw(), 1}));
}

TEST(ExecutionIndex, KOneKeepsOnlyCreationFrame) {
  IndexingState Index;
  Index.onCall(Label::intern("k1:call"));
  Label Site = Label::intern("k1:new");
  Abstraction Abs = Index.onNew(Site, 1);
  EXPECT_EQ(Abs.Elements, (std::vector<uint32_t>{Site.raw(), 1}));
}

TEST(ExecutionIndex, CountersResetPerContext) {
  // Two calls to the same site from *different* parent contexts each start
  // counting at 1 (counters are per depth instance, not global).
  IndexingState Index;
  Label Outer = Label::intern("ctr:outer");
  Label Inner = Label::intern("ctr:inner");
  Label New = Label::intern("ctr:new");

  Index.onCall(Outer);
  Index.onCall(Inner);
  Abstraction A = Index.onNew(New, 1);
  Index.onReturn();
  Index.onReturn();

  Index.onCall(Outer); // fresh outer context
  Index.onCall(Inner);
  Abstraction B = Index.onNew(New, 1);
  EXPECT_EQ(A.Elements[1], 1u);
  EXPECT_EQ(B.Elements[1], 1u) << "counter leaked across contexts";

  // But within the same context the counter advances.
  Abstraction C = Index.onNew(New, 1);
  EXPECT_EQ(C.Elements[1], 2u);
}

TEST(ExecutionIndex, UnmatchedReturnIsTolerated) {
  IndexingState Index;
  Index.onReturn(); // partially instrumented caller
  Index.onCall(Label::intern("tolerate:call"));
  Index.onReturn();
  Index.onReturn(); // extra again
  EXPECT_EQ(Index.depth(), 0u);
}

// -- CreationMap ----------------------------------------------------------------

TEST(CreationMap, ChainWalk) {
  CreationMap Map;
  Label S1 = Label::intern("cm:alloc1");
  Label S2 = Label::intern("cm:alloc2");
  Label S3 = Label::intern("cm:alloc3");
  // o1 created in a method of o2, o2 in a method of o3.
  Map.recordCreation(ObjectId(3), ObjectId(), S3);
  Map.recordCreation(ObjectId(2), ObjectId(3), S2);
  Map.recordCreation(ObjectId(1), ObjectId(2), S1);

  EXPECT_EQ(Map.computeAbsO(ObjectId(1), 3).Elements,
            (std::vector<uint32_t>{S1.raw(), S2.raw(), S3.raw()}));
  EXPECT_EQ(Map.computeAbsO(ObjectId(1), 2).Elements,
            (std::vector<uint32_t>{S1.raw(), S2.raw()}));
  EXPECT_EQ(Map.computeAbsO(ObjectId(1), 1).Elements,
            (std::vector<uint32_t>{S1.raw()}));
}

TEST(CreationMap, UnknownObjectIsEmpty) {
  CreationMap Map;
  EXPECT_TRUE(Map.computeAbsO(ObjectId(42), 4).Elements.empty());
}

TEST(CreationMap, ChainEndsAtParentlessObject) {
  CreationMap Map;
  Label S = Label::intern("cm:root");
  Map.recordCreation(ObjectId(1), ObjectId(), S);
  EXPECT_EQ(Map.computeAbsO(ObjectId(1), 5).Elements,
            (std::vector<uint32_t>{S.raw()}));
}

TEST(CreationMap, FactoryCollapsesSiblings) {
  // Two objects from the same factory site with the same parent have equal
  // absO_k — the weakness the paper's variant comparison exploits.
  CreationMap Map;
  Label Factory = Label::intern("cm:factory");
  Label Root = Label::intern("cm:rootsite");
  Map.recordCreation(ObjectId(10), ObjectId(), Root);
  Map.recordCreation(ObjectId(11), ObjectId(10), Factory);
  Map.recordCreation(ObjectId(12), ObjectId(10), Factory);
  EXPECT_EQ(Map.computeAbsO(ObjectId(11), 4),
            Map.computeAbsO(ObjectId(12), 4));
}

// -- AbstractionEngine ------------------------------------------------------------

TEST(AbstractionEngine, RegisterAndLookup) {
  AbstractionEngine Engine(4, 8);
  IndexingState Index;
  int A = 0, B = 0;
  auto [IdA, AbsA] =
      Engine.registerCreation(&A, nullptr, Label::intern("ae:a"), Index);
  auto [IdB, AbsB] =
      Engine.registerCreation(&B, &A, Label::intern("ae:b"), Index);
  EXPECT_NE(IdA, IdB);
  EXPECT_EQ(Engine.lookup(&A), IdA);
  EXPECT_EQ(Engine.lookup(&B), IdB);
  // B's k-object chain includes A's site.
  EXPECT_EQ(AbsB.KObject.Elements.size(), 2u);
  EXPECT_EQ(AbsA.KObject.Elements.size(), 1u);
}

TEST(AbstractionEngine, ForgetAddressAllowsReuse) {
  AbstractionEngine Engine(4, 8);
  IndexingState Index;
  int Slot = 0;
  auto [IdFirst, AbsFirst] =
      Engine.registerCreation(&Slot, nullptr, Label::intern("ae:r"), Index);
  Engine.forgetAddress(&Slot);
  EXPECT_FALSE(Engine.lookup(&Slot).isValid());
  auto [IdSecond, AbsSecond] =
      Engine.registerCreation(&Slot, nullptr, Label::intern("ae:r"), Index);
  EXPECT_NE(IdFirst, IdSecond) << "recycled address must get a fresh id";
  // Same creating context advanced its counter: abstractions differ.
  EXPECT_NE(AbsFirst.Index, AbsSecond.Index);
}

TEST(AbstractionEngine, UnregisteredParentEndsChain) {
  AbstractionEngine Engine(4, 8);
  IndexingState Index;
  int Child = 0, GhostParent = 0;
  auto [Id, Abs] = Engine.registerCreation(&Child, &GhostParent,
                                           Label::intern("ae:ghost"), Index);
  (void)Id;
  EXPECT_EQ(Abs.KObject.Elements.size(), 1u);
}

TEST(AbstractionEngine, ConcurrentRegistrationsGetUniqueIds) {
  AbstractionEngine Engine(4, 8);
  constexpr int Threads = 8, PerThread = 200;
  std::vector<std::vector<ObjectId>> Ids(Threads);
  std::vector<std::vector<char>> Storage(Threads,
                                         std::vector<char>(PerThread));
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([&, T] {
      IndexingState Index;
      for (int I = 0; I != PerThread; ++I) {
        auto [Id, Abs] = Engine.registerCreation(
            &Storage[T][I], nullptr, Label::intern("ae:conc"), Index);
        Ids[T].push_back(Id);
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  std::set<uint64_t> Unique;
  for (auto &PerThreadIds : Ids)
    for (ObjectId Id : PerThreadIds)
      Unique.insert(Id.Raw);
  EXPECT_EQ(Unique.size(), size_t(Threads) * PerThread);
  EXPECT_EQ(Engine.creationCount(), size_t(Threads) * PerThread);
}

// -- Abstraction value type ---------------------------------------------------------

TEST(Abstraction, EqualityAndHash) {
  Abstraction A{{1, 2, 3}};
  Abstraction B{{1, 2, 3}};
  Abstraction C{{1, 2, 4}};
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(std::hash<Abstraction>()(A), std::hash<Abstraction>()(B));
}

TEST(Abstraction, SelectByKind) {
  AbstractionSet Set;
  Set.KObject.Elements = {1};
  Set.Index.Elements = {2, 1};
  EXPECT_TRUE(Set.select(AbstractionKind::Trivial).Elements.empty());
  EXPECT_EQ(Set.select(AbstractionKind::KObjectSensitive).Elements,
            (std::vector<uint32_t>{1}));
  EXPECT_EQ(Set.select(AbstractionKind::ExecutionIndex).Elements,
            (std::vector<uint32_t>{2, 1}));
}

TEST(Abstraction, ToStringRendersSitesAndCounts) {
  Label Site = Label::intern("render:site");
  Abstraction Paired{{Site.raw(), 3}};
  std::string Rendered = Paired.toString(/*PairedCounts=*/true);
  EXPECT_NE(Rendered.find("render:site"), std::string::npos);
  EXPECT_NE(Rendered.find("x3"), std::string::npos);
  Abstraction Plain{{Site.raw()}};
  EXPECT_NE(Plain.toString(false).find("render:site"), std::string::npos);
}

TEST(AbstractionKindNames, AllDistinct) {
  EXPECT_STREQ(abstractionKindName(AbstractionKind::Trivial), "trivial");
  EXPECT_STREQ(abstractionKindName(AbstractionKind::KObjectSensitive),
               "k-object");
  EXPECT_STREQ(abstractionKindName(AbstractionKind::ExecutionIndex),
               "exec-index");
}

} // namespace
