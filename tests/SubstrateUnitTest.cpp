//===- tests/SubstrateUnitTest.cpp - Substrate functional behaviour ----------===//
//
// The benchmark substrates are ordinary libraries with observable
// behaviour; these tests pin that behaviour down (single-threaded, in
// passthrough/no-runtime mode) independent of the deadlock analysis.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "substrates/BenchmarkRegistry.h"
#include "substrates/collections/SyncList.h"
#include "substrates/collections/SyncMap.h"
#include "substrates/dbcp/Dbcp.h"
#include "substrates/logging/Logging.h"
#include "substrates/swing/Swing.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;

// -- SyncList -----------------------------------------------------------------

TEST(SyncList, AddAndQuery) {
  collections::SyncList L("ul", Label(), nullptr);
  EXPECT_EQ(L.size(), 0u);
  L.add(1);
  L.add(2);
  EXPECT_EQ(L.size(), 2u);
  EXPECT_TRUE(L.contains(1));
  EXPECT_FALSE(L.contains(9));
}

TEST(SyncList, AddAllAppendsEverything) {
  collections::SyncList A("ua", Label(), nullptr);
  collections::SyncList B("ub", Label(), nullptr);
  A.add(1);
  B.add(2);
  B.add(3);
  A.addAll(B);
  EXPECT_EQ(A.size(), 3u);
  EXPECT_TRUE(A.contains(2));
  EXPECT_EQ(B.size(), 2u) << "argument list must be untouched";
}

TEST(SyncList, RemoveAllAndRetainAll) {
  collections::SyncList A("ra", Label(), nullptr);
  collections::SyncList B("rb", Label(), nullptr);
  for (int I = 0; I != 6; ++I)
    A.add(I);
  B.add(1);
  B.add(3);
  B.add(5);
  A.removeAll(B);
  EXPECT_EQ(A.size(), 3u);
  EXPECT_TRUE(A.contains(0));
  EXPECT_FALSE(A.contains(3));

  collections::SyncList C("rc", Label(), nullptr);
  for (int I = 0; I != 6; ++I)
    C.add(I);
  C.retainAll(B);
  EXPECT_EQ(C.size(), 3u);
  EXPECT_TRUE(C.contains(5));
  EXPECT_FALSE(C.contains(0));
}

// -- SyncMap -----------------------------------------------------------------

TEST(SyncMap, PutGet) {
  collections::SyncMap M("um", Label(), nullptr);
  M.put(1, 10);
  M.put(2, 20);
  EXPECT_EQ(M.get(1), 10);
  EXPECT_EQ(M.get(3), 0) << "absent keys read as 0";
  EXPECT_EQ(M.size(), 2u);
}

TEST(SyncMap, EqualsSemantics) {
  collections::SyncMap A("ea", Label(), nullptr);
  collections::SyncMap B("eb", Label(), nullptr);
  A.put(1, 10);
  B.put(1, 10);
  EXPECT_TRUE(A.equals(B));
  B.put(2, 20);
  EXPECT_FALSE(A.equals(B)) << "size mismatch";
  A.put(2, 99);
  EXPECT_FALSE(A.equals(B)) << "value mismatch";
  A.put(2, 20);
  EXPECT_TRUE(A.equals(B));
}

TEST(SyncMap, GetAllCopiesMatchingKeys) {
  collections::SyncMap A("ga", Label(), nullptr);
  collections::SyncMap B("gb", Label(), nullptr);
  A.put(1, 0);
  A.put(2, 0);
  B.put(2, 22);
  B.put(3, 33);
  A.getAll(B);
  EXPECT_EQ(A.get(1), 0) << "keys absent in B keep their value";
  EXPECT_EQ(A.get(2), 22);
  EXPECT_EQ(A.size(), 2u) << "getAll must not insert new keys";
}

// -- Logging -----------------------------------------------------------------

TEST(Logging, FactoryAndState) {
  logging::LogManager Manager{Label()};
  logging::Logger &L = Manager.getLogger("unit");
  logging::Handler &H = Manager.getHandler("unit");
  EXPECT_EQ(L.name(), "unit");
  EXPECT_TRUE(L.isEnabled());
  L.log(H, "hello");
  EXPECT_EQ(H.recordCount(), 1u);
  H.flush();
  EXPECT_EQ(H.recordCount(), 0u);
  L.setLevel(2);
  Manager.reset(L);
  Manager.readConfiguration(H);
  EXPECT_EQ(H.recordCount(), 1u) << "readConfiguration appends a record";
  EXPECT_EQ(Manager.getProperty(), 7);
}

// -- DBCP ---------------------------------------------------------------------

TEST(Dbcp, ConnectionLifecycle) {
  dbcp::ConnectionPool Pool{Label()};
  dbcp::Connection &C = Pool.createConnection("unit");
  EXPECT_FALSE(C.isClosed());
  C.prepareStatement("select 1");
  EXPECT_EQ(Pool.activeCount(), 1u);
  Pool.closeStatement(C, "select 1");
  C.close();
  EXPECT_TRUE(C.isClosed());
  EXPECT_EQ(Pool.activeCount(), 0u);
}

TEST(Dbcp, EvictMarksClosed) {
  dbcp::ConnectionPool Pool{Label()};
  dbcp::Connection &C = Pool.createConnection("evict");
  Pool.evictIdle(C);
  EXPECT_TRUE(C.isClosed());
}

// -- Swing -------------------------------------------------------------------

TEST(Swing, CaretAndFrameState) {
  swing::Frame F{Label()};
  swing::TextArea Area(Label(), F);
  Area.setCaretPosition(17);
  EXPECT_EQ(Area.caret().dot(), 17);
  Area.caret().moveDot(3);
  EXPECT_EQ(Area.caret().dot(), 20);
  EXPECT_EQ(F.width(), 640);
  swing::RepaintManager RM;
  RM.paintDirtyRegions(Area.caret(), F); // must not self-deadlock
}

// -- Registry -----------------------------------------------------------------

TEST(Registry, AllBenchmarksPresent) {
  EXPECT_GE(allBenchmarks().size(), 10u);
  for (const char *Name :
       {"cache4j", "sor", "hedc", "jspider", "jigsaw", "logging", "swing",
        "dbcp", "collections-lists", "collections-maps", "collections"}) {
    const BenchmarkInfo *Info = findBenchmark(Name);
    ASSERT_NE(Info, nullptr) << Name;
    EXPECT_EQ(Info->Name, Name);
    EXPECT_TRUE(Info->Entry != nullptr);
  }
  EXPECT_EQ(findBenchmark("nonexistent"), nullptr);
}

TEST(Registry, EveryBenchmarkRunsUninstrumented) {
  // Each harness must terminate as a plain program (no runtime installed).
  for (const BenchmarkInfo &Info : allBenchmarks()) {
    if (Info.Name == "collections")
      continue; // union of two rows already covered
    SCOPED_TRACE(Info.Name);
    Info.Entry();
  }
}

} // namespace
