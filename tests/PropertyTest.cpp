//===- tests/PropertyTest.cpp - Parameterized property sweeps ----------------===//
//
// Property-style tests over seed sweeps and generated programs:
//
//  * soundness of the no-report direction: randomly generated programs
//    that follow a global lock order never produce cycles;
//  * completeness of the planted-bug direction: a random ordered program
//    with one planted inversion always produces (and confirms) it;
//  * cross-execution abstraction stability (the keystone of Phase II);
//  * scheduler invariants for every seed;
//  * invariance properties of the closure and the cycle checker.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/RandomStrategy.h"
#include "fuzzer/RealDeadlockChecker.h"
#include "igoodlock/IGoodlock.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/BenchmarkRegistry.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

namespace {

using namespace dlf;

// -- Random program generation ----------------------------------------------------

struct GeneratedProgramConfig {
  unsigned Locks = 6;
  unsigned Threads = 4;
  unsigned SectionsPerThread = 5;
  unsigned MaxNesting = 3;
  bool PlantInversion = false;
};

/// Builds a program whose threads acquire random nested subsets of a lock
/// array in strictly increasing index order (deadlock-free by
/// construction), optionally planting one inverted pair.
void runGeneratedProgram(const GeneratedProgramConfig &Config,
                         uint64_t Seed) {
  DLF_SCOPE("gen::program");
  Rng R(Seed);

  std::vector<std::unique_ptr<Mutex>> Locks;
  for (unsigned I = 0; I != Config.Locks; ++I)
    Locks.push_back(std::make_unique<Mutex>(
        "gen" + std::to_string(I), DLF_NAMED_SITE("gen:newLock"), nullptr));

  // Pre-generate each thread's acquisition plan (deterministic from Seed).
  struct Section {
    std::vector<unsigned> LockIndices; // sorted ascending = ordered
  };
  std::vector<std::vector<Section>> Plans(Config.Threads);
  for (auto &Plan : Plans) {
    for (unsigned S = 0; S != Config.SectionsPerThread; ++S) {
      Section Sec;
      unsigned Depth = 1 + static_cast<unsigned>(
                               R.nextBelow(Config.MaxNesting));
      std::set<unsigned> Chosen;
      while (Chosen.size() < Depth)
        Chosen.insert(static_cast<unsigned>(R.nextBelow(Config.Locks)));
      Sec.LockIndices.assign(Chosen.begin(), Chosen.end());
      Plan.push_back(std::move(Sec));
    }
  }

  std::vector<Thread> Workers;
  for (unsigned T = 0; T != Config.Threads; ++T) {
    const auto &Plan = Plans[T];
    Workers.emplace_back(Thread(
        [&Locks, &Plan] {
          DLF_SCOPE("gen::worker");
          for (const Section &Sec : Plan) {
            std::vector<std::unique_ptr<MutexGuard>> Guards;
            for (unsigned Idx : Sec.LockIndices)
              Guards.push_back(std::make_unique<MutexGuard>(
                  *Locks[Idx], DLF_NAMED_SITE("gen:acquire")));
            yieldNow();
          }
        },
        "gen" + std::to_string(T), DLF_NAMED_SITE("gen:spawn")));
  }

  if (Config.PlantInversion) {
    // Two extra threads acquiring a dedicated pair in opposite orders,
    // with distinct sites so the planted cycle is identifiable.
    Mutex P("plantP", DLF_NAMED_SITE("gen:plantP"));
    Mutex Q("plantQ", DLF_NAMED_SITE("gen:plantQ"));
    Thread Forward(
        [&] {
          DLF_SCOPE("gen::plantForward");
          MutexGuard A(P, DLF_NAMED_SITE("plant:pq-p"));
          MutexGuard B(Q, DLF_NAMED_SITE("plant:pq-q"));
        },
        "plantFwd", DLF_NAMED_SITE("gen:plantFwdSpawn"));
    Thread Backward(
        [&] {
          DLF_SCOPE("gen::plantBackward");
          for (int I = 0; I != 6; ++I)
            yieldNow();
          MutexGuard A(Q, DLF_NAMED_SITE("plant:qp-q"));
          MutexGuard B(P, DLF_NAMED_SITE("plant:qp-p"));
        },
        "plantBwd", DLF_NAMED_SITE("gen:plantBwdSpawn"));
    Forward.join();
    Backward.join();
  }

  for (Thread &W : Workers)
    W.join();
}

class GeneratedPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedPrograms, OrderedLockingNeverReportsCycles) {
  GeneratedProgramConfig Config;
  ActiveTesterConfig Tester;
  Tester.PhaseOneSeed = GetParam() * 7 + 1;
  ActiveTester T([&] { runGeneratedProgram(Config, GetParam()); }, Tester);
  PhaseOneResult P1 = T.runPhaseOne();
  EXPECT_TRUE(P1.Exec.Completed);
  EXPECT_TRUE(P1.Cycles.empty())
      << "false alarm on an ordered program, seed " << GetParam();
  EXPECT_GT(P1.Log.acquireEvents(), 0u);
}

TEST_P(GeneratedPrograms, PlantedInversionIsFoundAndConfirmed) {
  GeneratedProgramConfig Config;
  Config.PlantInversion = true;
  ActiveTesterConfig Tester;
  Tester.PhaseTwoReps = 5;
  Tester.PhaseOneSeed = GetParam() * 13 + 5;
  ActiveTester T([&] { runGeneratedProgram(Config, GetParam()); }, Tester);
  ActiveTesterReport Report = T.run();
  ASSERT_EQ(Report.PhaseOne.Cycles.size(), 1u)
      << "exactly the planted cycle must be reported";
  EXPECT_GT(Report.PerCycle[0].ReproducedTarget, 0u)
      << "planted deadlock not confirmed, seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedPrograms,
                         ::testing::Range<uint64_t>(1, 9));

/// Multiple independent planted inversions in one program: the pipeline
/// must find and confirm *all* of them, not just one.
class MultiPlanted : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiPlanted, EveryPlantedCycleFoundAndConfirmed) {
  constexpr unsigned PlantCount = 3;
  auto Program = [] {
    DLF_SCOPE("mp::program");
    for (unsigned Plant = 0; Plant != PlantCount; ++Plant) {
      Mutex P("mp-p" + std::to_string(Plant), DLF_NAMED_SITE("mp:newP"));
      Mutex Q("mp-q" + std::to_string(Plant), DLF_NAMED_SITE("mp:newQ"));
      Thread Forward(
          [&] {
            DLF_SCOPE("mp::fwd");
            MutexGuard A(P, DLF_NAMED_SITE("mp:fwdP"));
            MutexGuard B(Q, DLF_NAMED_SITE("mp:fwdQ"));
          },
          "mp.fwd" + std::to_string(Plant), DLF_NAMED_SITE("mp:spawnFwd"));
      Thread Backward(
          [&] {
            DLF_SCOPE("mp::bwd");
            for (int I = 0; I != 5; ++I)
              yieldNow();
            MutexGuard A(Q, DLF_NAMED_SITE("mp:bwdQ"));
            MutexGuard B(P, DLF_NAMED_SITE("mp:bwdP"));
          },
          "mp.bwd" + std::to_string(Plant), DLF_NAMED_SITE("mp:spawnBwd"));
      Forward.join();
      Backward.join();
    }
  };

  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 4;
  Config.PhaseOneSeed = GetParam() * 11 + 3;
  Config.PhaseTwoSeedBase = GetParam() * 1000;
  ActiveTester Tester(Program, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_EQ(Report.PhaseOne.Cycles.size(), PlantCount)
      << "each planted pair has its own locks: no cross cycles";
  EXPECT_EQ(Report.confirmedCycles(), PlantCount);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiPlanted,
                         ::testing::Values(1, 2, 3, 4));

// -- Cross-execution abstraction stability ------------------------------------------

class AbstractionStability : public ::testing::TestWithParam<const char *> {};

TEST_P(AbstractionStability, PhaseOneCycleKeysAgreeAcrossSeeds) {
  const BenchmarkInfo *Info = findBenchmark(GetParam());
  ASSERT_NE(Info, nullptr);

  auto KeysForSeed = [&](uint64_t Seed) {
    ActiveTesterConfig Config;
    Config.PhaseOneSeed = Seed;
    ActiveTester Tester(Info->Entry, Config);
    PhaseOneResult P1 = Tester.runPhaseOne();
    std::set<std::string> Keys;
    for (const AbstractCycle &Cycle : P1.Cycles)
      Keys.insert(Cycle.key(AbstractionKind::ExecutionIndex, true));
    return Keys;
  };

  // Different random schedules must observe the *same* abstract cycles:
  // abstractions exist precisely to survive schedule changes.
  auto A = KeysForSeed(1);
  auto B = KeysForSeed(77);
  EXPECT_EQ(A, B) << GetParam();
  EXPECT_FALSE(A.empty());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, AbstractionStability,
                         ::testing::Values("logging", "dbcp", "swing",
                                           "collections-lists"));

// -- Scheduler invariants over seeds ---------------------------------------------------

class SchedulerSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerSeeds, DeterministicEventCountsOnAnySchedule) {
  // The program's acquire count is schedule-independent; every seed must
  // complete with exactly that count.
  Options Opts;
  Opts.Mode = RunMode::Active;
  Opts.Seed = GetParam();
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run([] {
    Mutex A("inv-a", DLF_SITE());
    Mutex B("inv-b", DLF_SITE());
    std::vector<Thread> Workers;
    for (int T = 0; T != 3; ++T) {
      Workers.emplace_back(Thread([&A, &B] {
        for (int I = 0; I != 7; ++I) {
          MutexGuard Outer(A, DLF_NAMED_SITE("inv:outer"));
          MutexGuard Inner(B, DLF_NAMED_SITE("inv:inner"));
        }
      }));
    }
    for (Thread &W : Workers)
      W.join();
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 3u * 7u * 2u);
  EXPECT_EQ(R.Thrashes, 0u);
  EXPECT_FALSE(R.DeadlockFound);
}

TEST_P(SchedulerSeeds, DeadlockFreeWorkloadsAlwaysComplete) {
  for (const char *Name : {"cache4j", "hedc", "jspider"}) {
    const BenchmarkInfo *Info = findBenchmark(Name);
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = GetParam();
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run(Info->Entry);
    EXPECT_TRUE(R.Completed) << Name << " seed " << GetParam();
    EXPECT_FALSE(R.Stalled);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// -- Closure invariances ------------------------------------------------------------

/// Builds a random relation, returning it under an arbitrary thread-id
/// permutation; cycle *count* must be invariant under renaming.
class ClosureInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosureInvariance, CycleCountInvariantUnderThreadRenaming) {
  Rng R(GetParam());
  constexpr unsigned Threads = 6, Locks = 6, Entries = 18;

  struct RawEntry {
    uint64_t Thread;
    std::vector<uint64_t> Held;
    uint64_t Acq;
  };
  std::vector<RawEntry> Raw;
  for (unsigned I = 0; I != Entries; ++I) {
    RawEntry E;
    E.Thread = 1 + R.nextBelow(Threads);
    unsigned HeldCount = 1 + static_cast<unsigned>(R.nextBelow(2));
    std::set<uint64_t> Held;
    while (Held.size() < HeldCount)
      Held.insert(1 + R.nextBelow(Locks));
    E.Held.assign(Held.begin(), Held.end());
    do {
      E.Acq = 1 + R.nextBelow(Locks);
    } while (Held.count(E.Acq));
    Raw.push_back(std::move(E));
  }

  auto CountCycles = [&](const std::vector<uint64_t> &Rename) {
    LockDependencyLog Log;
    for (const RawEntry &E : Raw) {
      ThreadRecord T;
      T.Id = ThreadId(Rename[E.Thread - 1]);
      // Abstractions track the *original* identity so the abstract cycles
      // stay comparable.
      T.Abs.Index.Elements = {static_cast<uint32_t>(E.Thread), 1};
      Log.onThreadCreated(T);
      std::vector<LockStackEntry> Stack;
      for (uint64_t H : E.Held) {
        LockRecord L;
        L.Id = LockId(H);
        L.Abs.Index.Elements = {static_cast<uint32_t>(H)};
        Log.onLockCreated(L);
        Stack.push_back(
            {LockId(H), Label::intern("inv:l" + std::to_string(H))});
      }
      LockRecord Acq;
      Acq.Id = LockId(E.Acq);
      Acq.Abs.Index.Elements = {static_cast<uint32_t>(E.Acq)};
      Log.onLockCreated(Acq);
      Log.onAcquireExecuted(T, Acq, Stack,
                            Label::intern("inv:l" + std::to_string(E.Acq)),
                            LockMode::Exclusive);
    }
    IGoodlockOptions Opts;
    Opts.MaxCycleLength = 4;
    return runIGoodlock(Log, Opts).size();
  };

  std::vector<uint64_t> Identity = {1, 2, 3, 4, 5, 6};
  std::vector<uint64_t> Permuted = {4, 6, 1, 3, 2, 5};
  EXPECT_EQ(CountCycles(Identity), CountCycles(Permuted))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureInvariance,
                         ::testing::Range<uint64_t>(1, 13));

// -- Checker invariances ----------------------------------------------------------------

class CheckerInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckerInvariance, ViewOrderDoesNotChangeExistence) {
  Rng R(GetParam() * 31 + 7);
  constexpr size_t Threads = 4, Locks = 5;

  std::vector<ThreadRecord> Records(Threads);
  std::vector<LockRecord> LockRecords(Locks);
  for (size_t I = 0; I != Threads; ++I)
    Records[I].Id = ThreadId(I + 1);
  for (size_t I = 0; I != Locks; ++I)
    LockRecords[I].Id = LockId(I + 1);

  std::vector<std::vector<LockStackEntry>> Stacks(Threads);
  for (size_t T = 0; T != Threads; ++T) {
    size_t Depth = R.nextBelow(4);
    std::set<uint64_t> Used;
    for (size_t D = 0; D != Depth; ++D) {
      uint64_t L = 1 + R.nextBelow(Locks);
      if (!Used.insert(L).second)
        continue;
      Stacks[T].push_back({LockId(L), Label::intern("ci:site")});
    }
  }

  auto Exists = [&](const std::vector<size_t> &Order) {
    std::vector<ThreadStackView> Views;
    for (size_t I : Order)
      Views.push_back({&Records[I], &Stacks[I]});
    return findRealDeadlock(Views, [&](LockId Id) -> const LockRecord & {
             return LockRecords[Id.Raw - 1];
           })
        .has_value();
  };

  std::vector<size_t> Order = {0, 1, 2, 3};
  bool Reference = Exists(Order);
  do {
    EXPECT_EQ(Exists(Order), Reference) << "seed " << GetParam();
  } while (std::next_permutation(Order.begin(), Order.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerInvariance,
                         ::testing::Range<uint64_t>(1, 17));

} // namespace
