//===- tests/HappensBeforeTest.cpp - HB tracking & filter ---------------------===//
//
// The paper's §1 precision/predictive-power trade, as tests:
//
//  * fork/join tracking prunes the provably infeasible cycles (the §5.4
//    CachedThread class in the jigsaw substrate) while keeping every real
//    one;
//  * full-sync tracking additionally prunes real deadlocks whose critical
//    sections happened not to overlap in the observed run — "it fails to
//    report deadlocks that could happen in a significantly different
//    thread schedule".
//
//===----------------------------------------------------------------------===//

#include "event/VectorClock.h"
#include "fuzzer/ActiveTester.h"
#include "fuzzer/RandomStrategy.h"
#include "igoodlock/IGoodlock.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"
#include "substrates/BenchmarkRegistry.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;

// -- VectorClock unit behaviour -------------------------------------------------

TEST(VectorClock, TickAndCompare) {
  VectorClock A, B;
  vcTick(A, ThreadId(1));
  EXPECT_TRUE(vcLeq(B, A)) << "empty <= everything";
  vcTick(B, ThreadId(2));
  EXPECT_TRUE(vcConcurrent(A, B));
  vcJoin(B, A); // B saw A's event
  EXPECT_TRUE(vcLeq(A, B));
  EXPECT_FALSE(vcLeq(B, A));
  EXPECT_FALSE(vcConcurrent(A, B));
}

TEST(VectorClock, EmptyClocksAreConcurrent) {
  VectorClock Empty, Ticked;
  vcTick(Ticked, ThreadId(3));
  EXPECT_TRUE(vcConcurrent(Empty, Empty));
  EXPECT_TRUE(vcConcurrent(Empty, Ticked));
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock A, B;
  vcTick(A, ThreadId(1));
  vcTick(A, ThreadId(1));
  vcTick(B, ThreadId(1));
  vcTick(B, ThreadId(4));
  vcJoin(A, B);
  ASSERT_GE(A.size(), 4u);
  EXPECT_EQ(A[0], 2u);
  EXPECT_EQ(A[3], 1u);
}

// -- Recording --------------------------------------------------------------------

PhaseOneResult phaseOne(const Program &P, HbMode Mode, bool Filter) {
  ActiveTesterConfig Config;
  Config.Base.HappensBefore = Mode;
  Config.Goodlock.FilterByHappensBefore = Filter;
  ActiveTester Tester(P, Config);
  return Tester.runPhaseOne();
}

void figure1Like() {
  Mutex A("hb-a", DLF_SITE());
  Mutex B("hb-b", DLF_SITE());
  Thread T1([&] {
    for (int I = 0; I != 4; ++I)
      yieldNow();
    MutexGuard First(A, DLF_NAMED_SITE("hb:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("hb:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("hb:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("hb:t2a"));
  });
  T1.join();
  T2.join();
}

TEST(HappensBefore, ClocksRecordedWhenEnabled) {
  PhaseOneResult P1 = phaseOne(figure1Like, HbMode::ForkJoin, false);
  ASSERT_FALSE(P1.Log.entries().empty());
  for (const DependencyEntry &E : P1.Log.entries())
    EXPECT_FALSE(E.Clock.empty());
  PhaseOneResult Off = phaseOne(figure1Like, HbMode::Off, false);
  for (const DependencyEntry &E : Off.Log.entries())
    EXPECT_TRUE(E.Clock.empty());
}

TEST(HappensBefore, ForkJoinKeepsConcurrentCycles) {
  // The two workers are siblings: fork/join edges leave their acquires
  // concurrent, so the real cycle survives the filter.
  PhaseOneResult P1 = phaseOne(figure1Like, HbMode::ForkJoin, true);
  EXPECT_EQ(P1.Cycles.size(), 1u);
  EXPECT_EQ(P1.Stats.FilteredByHb, 0u);
}

TEST(HappensBefore, FullSyncPrunesNonOverlappingCycles) {
  // In the observed (non-deadlocking) execution the two critical sections
  // are ordered by the release->acquire edges, so full-sync tracking
  // orders the components and the filter drops the cycle: the predictive-
  // power loss the paper warns about.
  PhaseOneResult P1 = phaseOne(figure1Like, HbMode::FullSync, true);
  EXPECT_EQ(P1.Cycles.size(), 0u);
  EXPECT_GT(P1.Stats.FilteredByHb, 0u);
}

TEST(HappensBefore, ForkJoinPrunesSetupInversions) {
  // The §5.4 pattern in miniature: main's inverted acquisition happens
  // strictly before the worker starts.
  auto Program = [] {
    Mutex P("hb-p", DLF_SITE());
    Mutex Q("hb-q", DLF_SITE());
    {
      MutexGuard Outer(P, DLF_NAMED_SITE("hb:setupP"));
      MutexGuard Inner(Q, DLF_NAMED_SITE("hb:setupQ"));
    }
    Thread Worker([&] {
      MutexGuard Outer(Q, DLF_NAMED_SITE("hb:workQ"));
      MutexGuard Inner(P, DLF_NAMED_SITE("hb:workP"));
    });
    Worker.join();
  };

  PhaseOneResult Unfiltered = phaseOne(Program, HbMode::ForkJoin, false);
  ASSERT_EQ(Unfiltered.Cycles.size(), 1u)
      << "iGoodlock without the filter reports the infeasible cycle";

  PhaseOneResult Filtered = phaseOne(Program, HbMode::ForkJoin, true);
  EXPECT_EQ(Filtered.Cycles.size(), 0u)
      << "fork edges prove the cycle infeasible";
  EXPECT_EQ(Filtered.Stats.FilteredByHb, 1u);
}

TEST(HappensBefore, JigsawFalsePositivesPrunedRealCyclesKept) {
  const BenchmarkInfo *Info = findBenchmark("jigsaw");
  PhaseOneResult Plain = phaseOne(Info->Entry, HbMode::Off, false);
  PhaseOneResult Filtered = phaseOne(Info->Entry, HbMode::ForkJoin, true);

  auto IsCachedThreadCycle = [](const AbstractCycle &Cycle) {
    for (const CycleComponent &C : Cycle.Components)
      for (Label Site : C.Context)
        if (Site.text().find("CachedThread") != std::string::npos)
          return true;
    return false;
  };
  auto CachedThreadCycles = [&](const std::vector<AbstractCycle> &Cycles) {
    unsigned Count = 0;
    for (const AbstractCycle &Cycle : Cycles)
      if (IsCachedThreadCycle(Cycle))
        ++Count;
    return Count;
  };

  EXPECT_GT(CachedThreadCycles(Plain.Cycles), 0u)
      << "without the filter the §5.4 false positives are reported";
  EXPECT_EQ(CachedThreadCycles(Filtered.Cycles), 0u)
      << "fork/join filtering removes them";
  EXPECT_LT(Filtered.Cycles.size(), Plain.Cycles.size());
  EXPECT_GT(Filtered.Cycles.size(), 4u)
      << "the genuinely concurrent cycles must survive";
}

TEST(HappensBefore, RecordModeTracksClocksToo) {
  ActiveTesterConfig Config;
  Config.PhaseOneMode = RunMode::Record;
  Config.Base.HappensBefore = HbMode::ForkJoin;
  Config.Goodlock.FilterByHappensBefore = true;
  ActiveTester Tester(findBenchmark("hedc")->Entry, Config);
  PhaseOneResult P1 = Tester.runPhaseOne();
  EXPECT_TRUE(P1.Exec.Completed);
  for (const DependencyEntry &E : P1.Log.entries())
    EXPECT_FALSE(E.Clock.empty());
}

} // namespace
