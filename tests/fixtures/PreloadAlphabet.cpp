//===- tests/fixtures/PreloadAlphabet.cpp - Widened-alphabet target --------===//
//
// A plain pthreads program covering the widened synchronization alphabet
// end to end: rwlock read/write sides (Q/U vs A/R lines), trylock success
// and failure (A vs P lines), condvar signal/wake (N/V lines), a timed
// wait that expires (ETIMEDOUT must still reacquire the mutex, and must
// not emit a wakeup edge), and pthread_mutex_destroy as the very first
// interposed call in the process (the destroy wrapper must dlsym its real
// function lazily instead of relying on another wrapper having run).
//
// The program is deadlock-free and deterministic in the event *kinds* it
// emits, which is what PreloadTest.cpp asserts on.
//
// Deliberately uses no dlf headers: the target stays unmodified.
//
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <ctime>
#include <pthread.h>
#include <unistd.h>

namespace {

pthread_mutex_t Busy = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t Idle = PTHREAD_MUTEX_INITIALIZER;
pthread_rwlock_t Table = PTHREAD_RWLOCK_INITIALIZER;
pthread_mutex_t StateLock = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t Drained = PTHREAD_COND_INITIALIZER;
pthread_mutex_t TimedLock = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t NeverSignaled = PTHREAD_COND_INITIALIZER;
int Ready = 0;
int Work = 0;

} // namespace

// Exported (non-static) so dladdr can resolve stable call sites.
extern "C" void *alphabetProber(void *) {
  // Busy is held by main for this thread's whole lifetime: the probe
  // always fails (P line) and must bail out without blocking.
  if (pthread_mutex_trylock(&Busy) == 0)
    return (void *)1; // impossible; would be a fixture bug
  // Idle is free: the successful probe is an ordinary acquire (A line).
  if (pthread_mutex_trylock(&Idle) != 0)
    return (void *)1;
  ++Work;
  pthread_mutex_unlock(&Idle);
  return nullptr;
}

extern "C" void *alphabetReader(void *) {
  pthread_rwlock_rdlock(&Table);
  ++Work;
  usleep(2 * 1000);
  pthread_rwlock_unlock(&Table);
  return nullptr;
}

extern "C" void *alphabetWriter(void *) {
  usleep(5 * 1000);
  pthread_rwlock_wrlock(&Table);
  ++Work;
  pthread_rwlock_unlock(&Table);
  return nullptr;
}

extern "C" void *alphabetWaiter(void *) {
  pthread_mutex_lock(&StateLock);
  while (!Ready)
    pthread_cond_wait(&Drained, &StateLock);
  ++Work;
  pthread_mutex_unlock(&StateLock);
  return nullptr;
}

extern "C" void *alphabetTimedWaiter(void *) {
  pthread_mutex_lock(&TimedLock);
  timespec Deadline;
  clock_gettime(CLOCK_REALTIME, &Deadline);
  Deadline.tv_nsec += 10 * 1000 * 1000; // 10 ms; nobody ever signals
  if (Deadline.tv_nsec >= 1000 * 1000 * 1000) {
    Deadline.tv_nsec -= 1000 * 1000 * 1000;
    ++Deadline.tv_sec;
  }
  int Rc = pthread_cond_timedwait(&NeverSignaled, &TimedLock, &Deadline);
  if (Rc != ETIMEDOUT)
    return (void *)1;
  // The expired wait must have reacquired the mutex: this unlock would
  // corrupt state (or abort under error-checking mutexes) otherwise.
  ++Work;
  pthread_mutex_unlock(&TimedLock);
  return nullptr;
}

int main() {
  // Destroy before any other interposed call: a mutex that lives and dies
  // without ever being locked.
  pthread_mutex_t Ephemeral;
  pthread_mutex_init(&Ephemeral, nullptr);
  pthread_mutex_destroy(&Ephemeral);

  // Failed + successful trylock probes.
  pthread_mutex_lock(&Busy);
  pthread_t Prober;
  pthread_create(&Prober, nullptr, alphabetProber, nullptr);
  void *ProbeResult = nullptr;
  pthread_join(Prober, &ProbeResult);
  pthread_mutex_unlock(&Busy);
  if (ProbeResult)
    return 1;

  // Reader/writer traffic on one rwlock.
  pthread_t Reader, Writer;
  pthread_create(&Reader, nullptr, alphabetReader, nullptr);
  pthread_create(&Writer, nullptr, alphabetWriter, nullptr);
  pthread_join(Reader, nullptr);
  pthread_join(Writer, nullptr);
  pthread_rwlock_destroy(&Table);

  // One real signal -> wakeup edge.
  pthread_t Waiter;
  pthread_create(&Waiter, nullptr, alphabetWaiter, nullptr);
  usleep(2 * 1000);
  pthread_mutex_lock(&StateLock);
  Ready = 1;
  pthread_cond_signal(&Drained);
  pthread_mutex_unlock(&StateLock);
  pthread_join(Waiter, nullptr);

  // One wait that expires instead.
  pthread_t TimedWaiter;
  void *TimedResult = nullptr;
  pthread_create(&TimedWaiter, nullptr, alphabetTimedWaiter, nullptr);
  pthread_join(TimedWaiter, &TimedResult);
  if (TimedResult)
    return 1;

  return Work == 5 ? 0 : 1;
}
