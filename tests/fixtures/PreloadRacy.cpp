//===- tests/fixtures/PreloadRacy.cpp - Race-detector target ---------------===//
//
// A plain pthreads program carrying one textbook data race (two threads
// store to Unprotected with no synchronization) next to a properly
// lock-protected counter. The dlf_trace_read/dlf_trace_write hooks are
// declared weak: without the preload library they are null and the program
// runs unmodified; under LD_PRELOAD with DLF_TRACE_ACCESSES set they emit
// the O/L/S trace lines dlf-analyze --races consumes.
//
// With argv[1] == "clean" the unsynchronized stores are skipped, turning
// the same binary into the race-free control.
//
//===----------------------------------------------------------------------===//

#include <pthread.h>
#include <cstring>

extern "C" {
__attribute__((weak)) void dlf_trace_read(const void *Addr, const char *Site);
__attribute__((weak)) void dlf_trace_write(const void *Addr, const char *Site);
}

namespace {

void traceRead(const void *Addr, const char *Site) {
  if (dlf_trace_read)
    dlf_trace_read(Addr, Site);
}

void traceWrite(const void *Addr, const char *Site) {
  if (dlf_trace_write)
    dlf_trace_write(Addr, Site);
}

pthread_mutex_t Lock = PTHREAD_MUTEX_INITIALIZER;
int Unprotected = 0;
int Protected = 0;
bool Racy = true;

} // namespace

// Exported (non-static) so dladdr can resolve stable call sites.
extern "C" void *racyWorker1(void *) {
  if (Racy) {
    traceWrite(&Unprotected, "racyWorker1::store");
    Unprotected = 1;
  }
  pthread_mutex_lock(&Lock);
  traceWrite(&Protected, "racyWorker1::guardedStore");
  ++Protected;
  pthread_mutex_unlock(&Lock);
  return nullptr;
}

extern "C" void *racyWorker2(void *) {
  if (Racy) {
    traceRead(&Unprotected, "racyWorker2::load");
    int Observed = Unprotected;
    traceWrite(&Unprotected, "racyWorker2::store");
    Unprotected = Observed + 1;
  }
  pthread_mutex_lock(&Lock);
  traceWrite(&Protected, "racyWorker2::guardedStore");
  ++Protected;
  pthread_mutex_unlock(&Lock);
  return nullptr;
}

int main(int Argc, char **Argv) {
  Racy = !(Argc > 1 && std::strcmp(Argv[1], "clean") == 0);
  pthread_t T1, T2;
  pthread_create(&T1, nullptr, racyWorker1, nullptr);
  pthread_create(&T2, nullptr, racyWorker2, nullptr);
  pthread_join(T1, nullptr);
  pthread_join(T2, nullptr);
  return Protected == 2 ? 0 : 1;
}
