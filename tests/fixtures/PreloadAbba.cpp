//===- tests/fixtures/PreloadAbba.cpp - Unmodified pthreads target ---------===//
//
// A plain pthreads program with a classic ABBA deadlock whose window is far
// too small to hit under normal schedules (worker2 starts locking only
// after worker1 has long finished). Used by PreloadTest.cpp to exercise
// the LD_PRELOAD front end: Phase I traces it, dlf-analyze finds the
// potential cycle, Phase II pauses worker1 inside its critical section and
// confirms the deadlock (exit code 42 from the preload runtime).
//
// Deliberately uses no dlf headers: the whole point of the interposition
// front end is that the target is unmodified.
//
//===----------------------------------------------------------------------===//

#include <pthread.h>
#include <unistd.h>

namespace {

pthread_mutex_t LockA = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t LockB = PTHREAD_MUTEX_INITIALIZER;
int SharedCounter = 0;

} // namespace

// Exported (non-static) so dladdr can resolve stable call sites.
extern "C" void *abbaWorker1(void *) {
  pthread_mutex_lock(&LockA);
  ++SharedCounter;
  pthread_mutex_lock(&LockB);
  ++SharedCounter;
  pthread_mutex_unlock(&LockB);
  pthread_mutex_unlock(&LockA);
  return nullptr;
}

extern "C" void *abbaWorker2(void *) {
  // The "long running methods" of the paper's Figure 1: by the time this
  // thread touches the locks, worker1 is normally long gone.
  usleep(20 * 1000);
  pthread_mutex_lock(&LockB);
  ++SharedCounter;
  pthread_mutex_lock(&LockA);
  ++SharedCounter;
  pthread_mutex_unlock(&LockA);
  pthread_mutex_unlock(&LockB);
  return nullptr;
}

int main() {
  pthread_t T1, T2;
  pthread_create(&T1, nullptr, abbaWorker1, nullptr);
  pthread_create(&T2, nullptr, abbaWorker2, nullptr);
  pthread_join(T1, nullptr);
  pthread_join(T2, nullptr);
  return SharedCounter == 4 ? 0 : 1;
}
