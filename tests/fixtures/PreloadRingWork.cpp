//===- tests/fixtures/PreloadRingWork.cpp - Ring transport workloads -------===//
//
// Plain-pthreads ports of the rwlock-abba and condvar-hybrid substrate
// workloads, selected by argv[1], used by the ring CI tier and
// PreloadTest.cpp to check that dlf-observe on a ring recording reports
// the same cycles as dlf-analyze on the text trace of the same execution.
//
//   rwlock-abba:    scan holds registry(r)+tableA(r) and write-locks
//                   tableB; merge holds registry(r)+tableB(r) and
//                   write-locks tableA. The threads run sequentially on
//                   purpose: inverted lock orders meet in the dependency
//                   log without temporal overlap, so the fixture can never
//                   actually deadlock under test-machine load, while the
//                   shared registry read lock exercises the pruner's
//                   shared-guard reasoning.
//
//   condvar-hybrid: flusher takes state -> journal after a cond wait;
//                   producer takes journal -> state around the signal.
//                   The inverted pair meets in the log, and the
//                   signal->wake edge orders the two dependencies, so the
//                   cycle's classification depends on both pipelines
//                   rebuilding the condvar clock join identically.
//
// Deliberately uses no dlf headers: the target stays unmodified.
//
//===----------------------------------------------------------------------===//

#include <cstring>
#include <pthread.h>
#include <unistd.h>

namespace {

pthread_rwlock_t Registry = PTHREAD_RWLOCK_INITIALIZER;
pthread_rwlock_t TableA = PTHREAD_RWLOCK_INITIALIZER;
pthread_rwlock_t TableB = PTHREAD_RWLOCK_INITIALIZER;

pthread_mutex_t StateLock = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t Journal = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t Flushed = PTHREAD_COND_INITIALIZER;
int Dirty = 0;
int Work = 0;

} // namespace

// Exported (non-static) so dladdr can resolve stable call sites.
extern "C" void *ringScan(void *) {
  pthread_rwlock_rdlock(&Registry);
  pthread_rwlock_rdlock(&TableA);
  pthread_rwlock_wrlock(&TableB);
  ++Work;
  pthread_rwlock_unlock(&TableB);
  pthread_rwlock_unlock(&TableA);
  pthread_rwlock_unlock(&Registry);
  return nullptr;
}

extern "C" void *ringMerge(void *) {
  pthread_rwlock_rdlock(&Registry);
  pthread_rwlock_rdlock(&TableB);
  pthread_rwlock_wrlock(&TableA);
  ++Work;
  pthread_rwlock_unlock(&TableA);
  pthread_rwlock_unlock(&TableB);
  pthread_rwlock_unlock(&Registry);
  return nullptr;
}

extern "C" void *ringFlusher(void *) {
  pthread_mutex_lock(&StateLock);
  while (!Dirty)
    pthread_cond_wait(&Flushed, &StateLock);
  pthread_mutex_lock(&Journal);
  ++Work;
  pthread_mutex_unlock(&Journal);
  pthread_mutex_unlock(&StateLock);
  return nullptr;
}

extern "C" void *ringProducer(void *) {
  usleep(3 * 1000); // let the flusher park in the wait first (best effort)
  pthread_mutex_lock(&Journal);
  pthread_mutex_lock(&StateLock);
  Dirty = 1;
  ++Work;
  pthread_cond_signal(&Flushed);
  pthread_mutex_unlock(&StateLock);
  pthread_mutex_unlock(&Journal);
  return nullptr;
}

namespace {

int runRwlockAbba() {
  pthread_t Scan, Merge;
  if (pthread_create(&Scan, nullptr, ringScan, nullptr) != 0)
    return 1;
  pthread_join(Scan, nullptr);
  if (pthread_create(&Merge, nullptr, ringMerge, nullptr) != 0)
    return 1;
  pthread_join(Merge, nullptr);
  return Work == 2 ? 0 : 1;
}

int runCondvarHybrid() {
  // The producer never blocks while holding a lock the flusher needs
  // before the signal, so this cannot deadlock at runtime; the inverted
  // order exists only in the dependency log.
  pthread_t Flusher, Producer;
  if (pthread_create(&Flusher, nullptr, ringFlusher, nullptr) != 0)
    return 1;
  if (pthread_create(&Producer, nullptr, ringProducer, nullptr) != 0)
    return 1;
  pthread_join(Flusher, nullptr);
  pthread_join(Producer, nullptr);
  return Work == 2 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return 2;
  if (std::strcmp(Argv[1], "rwlock-abba") == 0)
    return runRwlockAbba();
  if (std::strcmp(Argv[1], "condvar-hybrid") == 0)
    return runCondvarHybrid();
  return 2;
}
