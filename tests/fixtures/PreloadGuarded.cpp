//===- tests/fixtures/PreloadGuarded.cpp - Discharged-cycle target ---------===//
//
// A plain pthreads program whose lock-order inversions exist in the
// dependency relation but can never deadlock, one per static-pruner
// verdict:
//
//  * guardedWorker1/2 invert LockA/LockB under a common Gate, the paper's
//    gate-lock pattern — dlf-analyze must classify the cycle "guarded"
//    and name the gate.
//  * main acquires LockC then LockD *before* creating hbWorker, which
//    inverts them — the fork edge orders the two sides, so the cycle is
//    "hb-ordered".
//
// Used by PreloadTest.cpp to check the classifications end to end. Like
// PreloadAbba, deliberately uses no dlf headers.
//
//===----------------------------------------------------------------------===//

#include <pthread.h>

namespace {

pthread_mutex_t Gate = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t LockA = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t LockB = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t LockC = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t LockD = PTHREAD_MUTEX_INITIALIZER;
int SharedCounter = 0;

} // namespace

// Exported (non-static) so dladdr can resolve stable call sites.
extern "C" void *guardedWorker1(void *) {
  pthread_mutex_lock(&Gate);
  pthread_mutex_lock(&LockA);
  pthread_mutex_lock(&LockB);
  ++SharedCounter;
  pthread_mutex_unlock(&LockB);
  pthread_mutex_unlock(&LockA);
  pthread_mutex_unlock(&Gate);
  return nullptr;
}

extern "C" void *guardedWorker2(void *) {
  pthread_mutex_lock(&Gate);
  pthread_mutex_lock(&LockB);
  pthread_mutex_lock(&LockA);
  ++SharedCounter;
  pthread_mutex_unlock(&LockA);
  pthread_mutex_unlock(&LockB);
  pthread_mutex_unlock(&Gate);
  return nullptr;
}

extern "C" void *hbWorker(void *) {
  pthread_mutex_lock(&LockD);
  pthread_mutex_lock(&LockC);
  ++SharedCounter;
  pthread_mutex_unlock(&LockC);
  pthread_mutex_unlock(&LockD);
  return nullptr;
}

int main() {
  pthread_t T1, T2, T3;
  pthread_create(&T1, nullptr, guardedWorker1, nullptr);
  pthread_create(&T2, nullptr, guardedWorker2, nullptr);
  pthread_join(T1, nullptr);
  pthread_join(T2, nullptr);

  // The C;D side of the hb-ordered inversion happens strictly before the
  // fork of the D;C side.
  pthread_mutex_lock(&LockC);
  pthread_mutex_lock(&LockD);
  ++SharedCounter;
  pthread_mutex_unlock(&LockD);
  pthread_mutex_unlock(&LockC);

  pthread_create(&T3, nullptr, hbWorker, nullptr);
  pthread_join(T3, nullptr);
  return SharedCounter == 4 ? 0 : 1;
}
