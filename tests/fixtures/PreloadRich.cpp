//===- tests/fixtures/PreloadRich.cpp - Rich pthreads target ----------------===//
//
// A pthreads program exercising the preload front end's full interposition
// surface: recursive mutexes, trylock, condition variables, and three
// threads with an inverted pair hidden behind a producer/consumer
// handshake. Completes cleanly on its own; under the preload the trace
// must reflect re-entrancy collapsing and cond_wait's release/re-acquire.
//
//===----------------------------------------------------------------------===//

#include <pthread.h>
#include <unistd.h>

namespace {

pthread_mutex_t QueueLock = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t QueueCond = PTHREAD_COND_INITIALIZER;
int QueueDepth = 0;
bool Done = false;

pthread_mutex_t LockA;
pthread_mutex_t LockB = PTHREAD_MUTEX_INITIALIZER;
int Work = 0;

} // namespace

extern "C" void *richProducer(void *) {
  for (int I = 0; I != 3; ++I) {
    pthread_mutex_lock(&QueueLock);
    ++QueueDepth;
    pthread_cond_signal(&QueueCond);
    pthread_mutex_unlock(&QueueLock);
    usleep(1000);
  }
  pthread_mutex_lock(&QueueLock);
  Done = true;
  pthread_cond_broadcast(&QueueCond);
  pthread_mutex_unlock(&QueueLock);
  return nullptr;
}

extern "C" void *richConsumer(void *) {
  for (;;) {
    pthread_mutex_lock(&QueueLock);
    while (QueueDepth == 0 && !Done)
      pthread_cond_wait(&QueueCond, &QueueLock);
    bool Stop = (QueueDepth == 0 && Done);
    if (!Stop)
      --QueueDepth;
    pthread_mutex_unlock(&QueueLock);
    if (Stop)
      return nullptr;
    // Nested pair in the benign order, via a recursive outer lock.
    pthread_mutex_lock(&LockA);
    pthread_mutex_lock(&LockA); // re-entrant: invisible to the trace
    pthread_mutex_lock(&LockB);
    ++Work;
    pthread_mutex_unlock(&LockB);
    pthread_mutex_unlock(&LockA);
    pthread_mutex_unlock(&LockA);
  }
}

extern "C" void *richInverter(void *) {
  usleep(15 * 1000); // stagger: window closed under normal schedules
  if (pthread_mutex_trylock(&LockB) == 0) {
    pthread_mutex_lock(&LockA); // [B -> A]: inverts the consumer's order
    ++Work;
    pthread_mutex_unlock(&LockA);
    pthread_mutex_unlock(&LockB);
  }
  return nullptr;
}

int main() {
  pthread_mutexattr_t Attr;
  pthread_mutexattr_init(&Attr);
  pthread_mutexattr_settype(&Attr, PTHREAD_MUTEX_RECURSIVE);
  pthread_mutex_init(&LockA, &Attr);

  pthread_t Producer, Consumer, Inverter;
  pthread_create(&Producer, nullptr, richProducer, nullptr);
  pthread_create(&Consumer, nullptr, richConsumer, nullptr);
  pthread_create(&Inverter, nullptr, richInverter, nullptr);
  pthread_join(Producer, nullptr);
  pthread_join(Consumer, nullptr);
  pthread_join(Inverter, nullptr);
  pthread_mutex_destroy(&LockA);
  return Work >= 3 ? 0 : 1;
}
