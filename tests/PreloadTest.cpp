//===- tests/PreloadTest.cpp - LD_PRELOAD front end, end to end ------------===//
//
// Drives the full interposition workflow against the unmodified pthreads
// fixture: trace under LD_PRELOAD, analyze with dlf-analyze, then confirm
// the deadlock in Phase II via DLF_PRELOAD_CYCLE. Paths to the built
// artifacts come in through compile definitions from CMake.
//
//===----------------------------------------------------------------------===//

#include "interpose/TraceFormat.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace {

/// Runs a shell command; returns the child's exit code (-1 on signal).
int runCommand(const std::string &Command) {
  int Status = std::system(Command.c_str());
  if (Status == -1 || !WIFEXITED(Status))
    return -1;
  return WEXITSTATUS(Status);
}

/// Captures a command's stdout.
std::string captureCommand(const std::string &Command) {
  std::string Output;
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return Output;
  char Buffer[512];
  while (fgets(Buffer, sizeof(Buffer), Pipe))
    Output += Buffer;
  pclose(Pipe);
  return Output;
}

std::string tmpPath(const char *Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

TEST(Preload, FullWorkflowOnUnmodifiedPthreadsProgram) {
  const std::string Trace = tmpPath("dlf_abba.trace");
  std::remove(Trace.c_str());

  // Baseline: the fixture completes cleanly without the preload.
  ASSERT_EQ(runCommand(std::string(DLF_ABBA_BIN) + " >/dev/null 2>&1"), 0);

  // Phase I: trace under LD_PRELOAD.
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " " DLF_ABBA_BIN " >/dev/null 2>&1"),
            0);
  std::ifstream TraceIn(Trace);
  ASSERT_TRUE(TraceIn.good()) << "preload produced no trace";
  std::string TraceText((std::istreambuf_iterator<char>(TraceIn)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(TraceText.find("A "), std::string::npos)
      << "trace has no acquire events:\n"
      << TraceText;

  // Analyze: expect exactly one potential cycle and a spec line.
  std::string Analysis =
      captureCommand(std::string(DLF_ANALYZE_BIN) + " " + Trace);
  EXPECT_NE(Analysis.find("1 potential deadlock cycle"), std::string::npos)
      << Analysis;
  size_t SpecPos = Analysis.find("cycle-spec: ");
  ASSERT_NE(SpecPos, std::string::npos) << Analysis;
  size_t SpecEnd = Analysis.find('\n', SpecPos);
  std::string Spec =
      Analysis.substr(SpecPos + 12, SpecEnd - SpecPos - 12);
  ASSERT_FALSE(Spec.empty());

  // Phase II: the biased run confirms the deadlock (exit code 42) with
  // high probability; the pause expires otherwise (thrash analogue), so
  // allow a few attempts.
  bool Confirmed = false;
  for (int Attempt = 0; Attempt != 5 && !Confirmed; ++Attempt) {
    int Exit = runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB
                          " DLF_PRELOAD_CYCLE='" +
                          Spec + "' " DLF_ABBA_BIN " >/dev/null 2>&1");
    if (Exit == dlf::interpose::DeadlockExitCode)
      Confirmed = true;
    else
      EXPECT_EQ(Exit, 0) << "unexpected exit on attempt " << Attempt;
  }
  EXPECT_TRUE(Confirmed)
      << "Phase II never created the deadlock in 5 attempts; spec: " << Spec;
}

TEST(Preload, PassthroughWhenNoPhaseRequested) {
  // With neither trace nor cycle env vars the interposition is inert.
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " " DLF_ABBA_BIN
                       " >/dev/null 2>&1"),
            0);
}

TEST(Preload, RichFixtureTracesCorrectly) {
  // Recursive mutexes, trylock and condition variables through the
  // interposition: the program still completes, the trace collapses
  // re-entrant acquires, and the analyzer finds the one inverted pair.
  const std::string Trace = tmpPath("dlf_rich.trace");
  std::remove(Trace.c_str());

  ASSERT_EQ(runCommand(std::string(DLF_RICH_BIN) + " >/dev/null 2>&1"), 0);
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " " DLF_RICH_BIN " >/dev/null 2>&1"),
            0);

  std::ifstream TraceIn(Trace);
  ASSERT_TRUE(TraceIn.good());
  std::string Line;
  unsigned Acquires = 0, Releases = 0, Threads = 0, Joins = 0;
  while (std::getline(TraceIn, Line)) {
    if (Line.rfind("A ", 0) == 0)
      ++Acquires;
    else if (Line.rfind("R ", 0) == 0)
      ++Releases;
    else if (Line.rfind("T ", 0) == 0)
      ++Threads;
    else if (Line.rfind("J ", 0) == 0)
      ++Joins;
  }
  EXPECT_GE(Threads, 4u) << "main + three workers";
  EXPECT_GE(Joins, 3u) << "pthread_join must emit a J happens-before edge";
  EXPECT_GT(Acquires, 6u);
  EXPECT_EQ(Acquires, Releases)
      << "re-entrant pairs must collapse symmetrically";

  std::string Analysis =
      captureCommand(std::string(DLF_ANALYZE_BIN) + " " + Trace);
  EXPECT_NE(Analysis.find("potential deadlock cycle"), std::string::npos)
      << "the A/B inversion must be reported:\n"
      << Analysis;
}

TEST(Preload, AlphabetFixtureCoversWidenedGrammar) {
  // The widened-alphabet fixture exercises rwlock read/write sides,
  // trylock success and failure, a signalled cond wait, a timed wait that
  // expires, and a destroy-before-any-other-call mutex. The event *kinds*
  // it emits are deterministic even though their order is not.
  const std::string Trace = tmpPath("dlf_alphabet.trace");
  std::remove(Trace.c_str());

  // The fixture is deadlock-free and self-checking (ETIMEDOUT reacquire,
  // failed probe really failing): nonzero exit means the wrappers broke
  // its semantics, with or without the preload.
  ASSERT_EQ(runCommand(std::string(DLF_ALPHABET_BIN) + " >/dev/null 2>&1"),
            0);
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " " DLF_ALPHABET_BIN " >/dev/null 2>&1"),
            0);

  std::ifstream TraceIn(Trace);
  ASSERT_TRUE(TraceIn.good()) << "preload produced no trace";
  std::string Line;
  unsigned SharedAcquires = 0, SharedReleases = 0, FailedProbes = 0,
           Notifies = 0, Wakes = 0;
  while (std::getline(TraceIn, Line)) {
    if (Line.rfind("Q ", 0) == 0)
      ++SharedAcquires;
    else if (Line.rfind("U ", 0) == 0)
      ++SharedReleases;
    else if (Line.rfind("P ", 0) == 0)
      ++FailedProbes;
    else if (Line.rfind("N ", 0) == 0)
      ++Notifies;
    else if (Line.rfind("V ", 0) == 0)
      ++Wakes;
  }
  EXPECT_GE(SharedAcquires, 1u) << "rdlock never traced";
  EXPECT_EQ(SharedAcquires, SharedReleases)
      << "read side acquire/release must pair";
  EXPECT_GE(FailedProbes, 1u) << "the Busy probe always fails";
  // One pthread_cond_signal with a waiter parked; the expired timedwait
  // must NOT manufacture a wakeup edge.
  EXPECT_EQ(Notifies, 1u);
  EXPECT_EQ(Wakes, 1u);

  // No lock-order inversion anywhere in the fixture.
  std::string Analysis =
      captureCommand(std::string(DLF_ANALYZE_BIN) + " " + Trace);
  EXPECT_NE(Analysis.find("0 potential deadlock cycle(s)"),
            std::string::npos)
      << Analysis;
}

TEST(Preload, MutexOnlyTraceAvoidsWidenedGrammar) {
  // Byte-compatibility: a program that uses only plain mutexes must
  // produce a trace with none of the new event kinds, so pre-existing
  // tooling sees identical files.
  const std::string Trace = tmpPath("dlf_abba_grammar.trace");
  std::remove(Trace.c_str());
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " " DLF_ABBA_BIN " >/dev/null 2>&1"),
            0);
  std::ifstream TraceIn(Trace);
  ASSERT_TRUE(TraceIn.good());
  std::string Line;
  while (std::getline(TraceIn, Line)) {
    ASSERT_FALSE(Line.empty());
    switch (Line[0]) {
    case 'Q':
    case 'U':
    case 'P':
    case 'N':
    case 'V':
      FAIL() << "mutex-only trace contains widened-alphabet line: " << Line;
    default:
      break;
    }
  }
}

TEST(Preload, GuardedFixtureClassifiedEndToEnd) {
  // The discharged-cycle fixture: a gate-protected inversion and a
  // fork-ordered inversion. Both cycles must surface (dlf-analyze keeps
  // guarded cycles) and both must be statically discharged, with the gate
  // named for the guarded one.
  const std::string Trace = tmpPath("dlf_guarded.trace");
  std::remove(Trace.c_str());

  ASSERT_EQ(runCommand(std::string(DLF_GUARDED_BIN) + " >/dev/null 2>&1"), 0);
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " " DLF_GUARDED_BIN " >/dev/null 2>&1"),
            0);

  std::string Analysis =
      captureCommand(std::string(DLF_ANALYZE_BIN) + " " + Trace);
  EXPECT_NE(Analysis.find("2 potential deadlock cycle(s)"), std::string::npos)
      << Analysis;
  EXPECT_NE(Analysis.find("pruner: 0 schedulable, 2 statically discharged"),
            std::string::npos)
      << Analysis;
  EXPECT_NE(Analysis.find("classification: guarded (guard lock: "),
            std::string::npos)
      << Analysis;
  EXPECT_NE(Analysis.find("classification: hb-ordered"), std::string::npos)
      << Analysis;
}

TEST(Preload, AbbaCycleStaysSchedulable) {
  // The pruner must not discharge the genuinely schedulable inversion.
  const std::string Trace = tmpPath("dlf_abba_sched.trace");
  std::remove(Trace.c_str());
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " " DLF_ABBA_BIN " >/dev/null 2>&1"),
            0);
  std::string Analysis =
      captureCommand(std::string(DLF_ANALYZE_BIN) + " " + Trace);
  EXPECT_NE(Analysis.find("pruner: 1 schedulable, 0 statically discharged"),
            std::string::npos)
      << Analysis;
  EXPECT_NE(Analysis.find("classification: schedulable"), std::string::npos)
      << Analysis;
}

TEST(Preload, RaceDetectorFindsSeededRace) {
  const std::string Trace = tmpPath("dlf_racy.trace");
  std::remove(Trace.c_str());

  // The weak hooks make the fixture self-sufficient without the preload.
  ASSERT_EQ(runCommand(std::string(DLF_RACY_BIN) + " >/dev/null 2>&1"), 0);
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " DLF_TRACE_ACCESSES=1 " DLF_RACY_BIN
                       " >/dev/null 2>&1"),
            0);

  std::string Races = captureCommand(std::string(DLF_ANALYZE_BIN) + " " +
                                     Trace + " --races 2>/dev/null");
  EXPECT_NE(Races.find("2 racy pair(s)"), std::string::npos) << Races;
  EXPECT_NE(Races.find("racyWorker1::store"), std::string::npos) << Races;
  EXPECT_NE(Races.find("racyWorker2::store"), std::string::npos) << Races;
  // The lock-protected counter must not be reported.
  EXPECT_EQ(Races.find("guardedStore"), std::string::npos) << Races;
}

TEST(Preload, RaceDetectorCleanOnRaceFreeRun) {
  const std::string Trace = tmpPath("dlf_clean.trace");
  std::remove(Trace.c_str());
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " DLF_TRACE_ACCESSES=1 " DLF_RACY_BIN
                       " clean >/dev/null 2>&1"),
            0);
  std::string Races = captureCommand(std::string(DLF_ANALYZE_BIN) + " " +
                                     Trace + " --races 2>/dev/null");
  EXPECT_NE(Races.find("0 racy pair(s)"), std::string::npos) << Races;
}

TEST(Preload, RaceOutputIdenticalAcrossAnalysisJobs) {
  // The determinism contract: --races stdout is byte-identical for every
  // --analysis-jobs value, including 0 (hardware concurrency).
  const std::string Trace = tmpPath("dlf_racy_jobs.trace");
  std::remove(Trace.c_str());
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                       Trace + " DLF_TRACE_ACCESSES=1 " DLF_RACY_BIN
                       " >/dev/null 2>&1"),
            0);
  std::string Baseline;
  for (const char *Jobs : {"1", "2", "4", "0"}) {
    std::string Out =
        captureCommand(std::string(DLF_ANALYZE_BIN) + " " + Trace +
                       " --races --analysis-jobs " + Jobs + " 2>/dev/null");
    ASSERT_FALSE(Out.empty()) << "jobs " << Jobs;
    if (Baseline.empty())
      Baseline = Out;
    else
      EXPECT_EQ(Out, Baseline) << "jobs " << Jobs;
  }
}

TEST(Preload, AnalyzeExitCodesDistinguishFailures) {
  const std::string Empty = tmpPath("dlf_empty.trace");
  const std::string Comments = tmpPath("dlf_comments.trace");
  const std::string Corrupt = tmpPath("dlf_corrupt.trace");
  std::ofstream(Empty.c_str()).close();
  std::ofstream(Comments.c_str()) << "# dlf-preload trace v1\n";
  std::ofstream(Corrupt.c_str()) << "T 1 main#1\nA 1 zzz\n";

  // 3: the trace opened but carries no events (misconfigured run).
  EXPECT_EQ(runCommand(std::string(DLF_ANALYZE_BIN) + " " + Empty +
                       " >/dev/null 2>&1"),
            3);
  EXPECT_EQ(runCommand(std::string(DLF_ANALYZE_BIN) + " " + Comments +
                       " >/dev/null 2>&1"),
            3);
  // 2: unreadable or corrupt (missing file, truncated line).
  EXPECT_EQ(runCommand(std::string(DLF_ANALYZE_BIN) +
                       " /nonexistent/trace >/dev/null 2>&1"),
            2);
  EXPECT_EQ(runCommand(std::string(DLF_ANALYZE_BIN) + " " + Corrupt +
                       " >/dev/null 2>&1"),
            2);
  // The corrupt-trace diagnostic names the offending line.
  std::string Err = captureCommand(std::string(DLF_ANALYZE_BIN) + " " +
                                   Corrupt + " 2>&1 >/dev/null");
  EXPECT_NE(Err.find(":2:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("truncated or corrupt"), std::string::npos) << Err;
  // 1: usage errors, checked before the trace is touched.
  EXPECT_EQ(runCommand(std::string(DLF_ANALYZE_BIN) + " " + Corrupt +
                       " --bogus >/dev/null 2>&1"),
            1);

  std::remove(Empty.c_str());
  std::remove(Comments.c_str());
  std::remove(Corrupt.c_str());
}

TEST(Preload, MalformedNumericInputsFailFast) {
  // dlf-analyze: --max-cycle-length garbage used to atoi to 0 and silently
  // disable the cycle search; it must be a usage error now.
  EXPECT_NE(runCommand(std::string(DLF_ANALYZE_BIN) +
                       " /dev/null --max-cycle-length abc >/dev/null 2>&1"),
            0);
  // Preload library: a typo'd DLF_PRELOAD_PAUSE_MS used to atoi to 0 and
  // disarm the biased scheduler; the process must refuse to start.
  EXPECT_NE(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB
                       " DLF_PRELOAD_PAUSE_MS=abc " DLF_ABBA_BIN
                       " >/dev/null 2>&1"),
            0);
  // A well-formed value still passes through untouched.
  EXPECT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB
                       " DLF_PRELOAD_PAUSE_MS=50 " DLF_ABBA_BIN
                       " >/dev/null 2>&1"),
            0);
}

/// Reduces a cycle report to its run-invariant lines: the cycle count
/// (tool prefix stripped), the pruner line, and every per-cycle block. The
/// closure timing line is run-dependent and excluded. This is the shape of
/// report that must match between dlf-analyze on a text trace and
/// dlf-observe on a ring recording of the same execution.
std::string cycleSummary(const std::string &Report) {
  std::istringstream In(Report);
  std::string Line, Out;
  while (std::getline(In, Line)) {
    size_t Tool = Line.find(": ");
    if (Line.find(" potential deadlock cycle(s)") != std::string::npos &&
        Tool != std::string::npos) {
      Out += Line.substr(Tool + 2) + "\n";
      continue;
    }
    if (Line.rfind("#", 0) == 0 || Line.rfind("pruner: ", 0) == 0 ||
        Line.rfind("classification: ", 0) == 0 ||
        Line.rfind("cycle-spec: ", 0) == 0 || Line.rfind("  ", 0) == 0)
      Out += Line + "\n";
  }
  return Out;
}

TEST(PreloadRing, CombinedModeMatchesTextAnalysis) {
  // One execution, two recordings: the text trace and the binary ring.
  // dlf-analyze on the former and dlf-observe on the latter must report
  // the same cycles — the ring acceptance criterion, for both workloads.
  for (const char *Workload : {"rwlock-abba", "condvar-hybrid"}) {
    const std::string Trace = tmpPath((std::string("dlf_ring_") + Workload +
                                       ".trace").c_str());
    const std::string Ring = tmpPath((std::string("dlf_ring_") + Workload +
                                      ".ring").c_str());
    std::remove(Trace.c_str());
    std::remove(Ring.c_str());

    ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_PRELOAD_TRACE=" +
                         Trace + " DLF_RING=" + Ring + " " DLF_RINGWORK_BIN
                         " " + Workload + " >/dev/null 2>&1"),
              0)
        << Workload;

    std::string Analyzed =
        captureCommand(std::string(DLF_ANALYZE_BIN) + " " + Trace +
                       " 2>/dev/null");
    std::string Observed =
        captureCommand(std::string(DLF_OBSERVE_BIN) + " " + Ring +
                       " 2>/dev/null");
    ASSERT_FALSE(Analyzed.empty()) << Workload;
    ASSERT_FALSE(Observed.empty()) << Workload;
    EXPECT_EQ(cycleSummary(Analyzed), cycleSummary(Observed)) << Workload;

    std::remove(Trace.c_str());
    std::remove(Ring.c_str());
  }
}

TEST(PreloadRing, RingOnlyModeFindsTheRwlockCycle) {
  // No text trace at all: DLF_RING alone, observer attaches after exit and
  // rebuilds the model (ids, site#n, unlock sides) from raw records.
  const std::string Ring = tmpPath("dlf_ringonly.ring");
  std::remove(Ring.c_str());
  ASSERT_EQ(runCommand("LD_PRELOAD=" DLF_PRELOAD_LIB " DLF_RING=" + Ring +
                       " " DLF_RINGWORK_BIN " rwlock-abba >/dev/null 2>&1"),
            0);
  std::string Observed =
      captureCommand(std::string(DLF_OBSERVE_BIN) + " " + Ring +
                     " 2>/dev/null");
  EXPECT_NE(Observed.find("1 potential deadlock cycle(s)"),
            std::string::npos)
      << Observed;
  EXPECT_NE(Observed.find("cycle-spec: "), std::string::npos) << Observed;
  std::remove(Ring.c_str());
}

TEST(PreloadRing, LaunchModeHandsTheTargetAMemfd) {
  // dlf-observe creates the ring on an anonymous memfd, forks the target
  // with DLF_RING=fd:<n>, and observes live: no ring file ever exists.
  std::string Observed = captureCommand(
      std::string(DLF_OBSERVE_BIN) + " --preload " DLF_PRELOAD_LIB
      " -- " DLF_RINGWORK_BIN " rwlock-abba 2>/dev/null");
  EXPECT_NE(Observed.find("1 potential deadlock cycle(s)"),
            std::string::npos)
      << Observed;
}

TEST(PreloadRing, ObserveExitCodesDistinguishFailures) {
  // 2: not a ring.
  const std::string Bogus = tmpPath("dlf_bogus.ring");
  std::ofstream(Bogus) << "this is not a ring\n";
  EXPECT_EQ(runCommand(std::string(DLF_OBSERVE_BIN) + " " + Bogus +
                       " >/dev/null 2>&1"),
            2);
  std::remove(Bogus.c_str());
  // 2: missing file.
  EXPECT_EQ(runCommand(std::string(DLF_OBSERVE_BIN) +
                       " /nonexistent/no.ring >/dev/null 2>&1"),
            2);
  // 1: usage errors.
  EXPECT_EQ(runCommand(std::string(DLF_OBSERVE_BIN) + " >/dev/null 2>&1"),
            1);
  EXPECT_EQ(runCommand(std::string(DLF_OBSERVE_BIN) +
                       " a.ring --max-cycle-length abc >/dev/null 2>&1"),
            1);
}

} // namespace
