//===- tests/SystematicTest.cpp - Systematic explorer -------------------------===//

#include "fuzzer/Systematic.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;

void abba(unsigned Prelude, bool Ordered) {
  Mutex A("sy-a", DLF_SITE());
  Mutex B("sy-b", DLF_SITE());
  Thread T1(
      [&, Prelude] {
        for (unsigned I = 0; I != Prelude; ++I)
          yieldNow();
        MutexGuard First(A, DLF_NAMED_SITE("sy:t1a"));
        MutexGuard Second(B, DLF_NAMED_SITE("sy:t1b"));
      },
      "sy.t1");
  Thread T2(
      [&, Ordered] {
        Mutex &First = Ordered ? A : B;
        Mutex &Second = Ordered ? B : A;
        MutexGuard Outer(First, DLF_NAMED_SITE("sy:t2f"));
        MutexGuard Inner(Second, DLF_NAMED_SITE("sy:t2s"));
      },
      "sy.t2");
  T1.join();
  T2.join();
}

TEST(Systematic, FindsTheDeadlock) {
  SystematicResult R = exploreSystematically(
      [] { abba(2, false); }, /*MaxExecutions=*/100000);
  EXPECT_TRUE(R.DeadlockFound);
  EXPECT_FALSE(R.Exhausted);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_EQ(R.Witness->Edges.size(), 2u);
  EXPECT_GT(R.Executions, 1u) << "the default schedule should not deadlock";
}

TEST(Systematic, ExhaustsDeadlockFreePrograms) {
  SystematicResult R = exploreSystematically(
      [] { abba(0, true); }, /*MaxExecutions=*/100000);
  EXPECT_FALSE(R.DeadlockFound);
  EXPECT_TRUE(R.Exhausted);
  EXPECT_GT(R.Executions, 10u);
}

TEST(Systematic, Deterministic) {
  auto RunOnce = [] {
    return exploreSystematically([] { abba(1, false); }, 100000);
  };
  SystematicResult First = RunOnce();
  SystematicResult Second = RunOnce();
  EXPECT_EQ(First.DeadlockFound, Second.DeadlockFound);
  EXPECT_EQ(First.Executions, Second.Executions);
}

TEST(Systematic, BudgetIsRespected) {
  SystematicResult R = exploreSystematically(
      [] { abba(6, true); }, /*MaxExecutions=*/25);
  EXPECT_FALSE(R.DeadlockFound);
  EXPECT_LE(R.Executions, 25u);
  EXPECT_FALSE(R.Exhausted) << "25 executions cannot exhaust this tree";
}

TEST(Systematic, VerificationCostGrowsWithExecutionLength) {
  // The paper's §1 claim in miniature: exhausting the schedule tree of
  // the deadlock-free variant takes strictly more executions as the
  // program gets longer.
  uint64_t Short = exploreSystematically([] { abba(0, true); }, 1u << 20)
                       .Executions;
  uint64_t Mid = exploreSystematically([] { abba(3, true); }, 1u << 20)
                     .Executions;
  uint64_t Long = exploreSystematically([] { abba(6, true); }, 1u << 20)
                      .Executions;
  EXPECT_LT(Short, Mid);
  EXPECT_LT(Mid, Long);
  EXPECT_GT(Long, 4 * Short) << "growth should be super-linear";
}

TEST(Systematic, SingleThreadedProgramHasOneSchedule) {
  SystematicResult R = exploreSystematically(
      [] {
        Mutex M("sy-single", DLF_SITE());
        MutexGuard Guard(M, DLF_NAMED_SITE("sy:single"));
      },
      100);
  EXPECT_TRUE(R.Exhausted);
  EXPECT_FALSE(R.DeadlockFound);
  EXPECT_EQ(R.Executions, 1u);
}

} // namespace
