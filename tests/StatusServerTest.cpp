//===- tests/StatusServerTest.cpp - HTTP observability plane ----------------===//
//
// Exercises serve::StatusServer over real loopback sockets: endpoint
// content types and bodies, Prometheus exposition details (+Inf bucket,
// label escaping, build-info metric), the /status JSON round trip through
// the campaign JSON parser, SSE framing, error responses, the loopback-only
// bind refusal, and concurrent scrapes racing live publishes (the test the
// TSan CI tier leans on).
//
//===----------------------------------------------------------------------===//

#include "campaign/Json.h"
#include "serve/StatusServer.h"
#include "telemetry/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

using namespace dlf;
using namespace dlf::serve;

/// Blocking loopback connect with a receive timeout; returns -1 on failure.
int connectLoopback(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  timeval Tv{5, 0};
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  sockaddr_in Sin{};
  Sin.sin_family = AF_INET;
  Sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Sin.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Sin), sizeof(Sin)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// One-shot request: sends \p Request, reads until the server closes.
std::string httpRoundTrip(uint16_t Port, const std::string &Request) {
  int Fd = connectLoopback(Port);
  if (Fd < 0)
    return "";
  if (::send(Fd, Request.data(), Request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(Request.size())) {
    ::close(Fd);
    return "";
  }
  std::string Response;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Response.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  return Response;
}

std::string httpGet(uint16_t Port, const std::string &Path) {
  return httpRoundTrip(Port, "GET " + Path + " HTTP/1.1\r\n"
                             "Host: 127.0.0.1\r\n\r\n");
}

/// Reads from \p Fd until \p Needle appears in the accumulated stream or
/// the deadline passes. Used for SSE, where the server never closes.
bool readUntil(int Fd, const std::string &Needle, std::string &Accum,
               int DeadlineMs = 5000) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(DeadlineMs);
  char Buf[4096];
  while (Accum.find(Needle) == std::string::npos) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return false;
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        continue;
      return false;
    }
    Accum.append(Buf, static_cast<size_t>(N));
  }
  return true;
}

std::string headerValue(const std::string &Response, const std::string &Name) {
  std::string Key = "\r\n" + Name + ": ";
  size_t Pos = Response.find(Key);
  if (Pos == std::string::npos)
    return "";
  size_t Start = Pos + Key.size();
  size_t End = Response.find("\r\n", Start);
  return Response.substr(Start, End - Start);
}

std::string body(const std::string &Response) {
  size_t Pos = Response.find("\r\n\r\n");
  return Pos == std::string::npos ? "" : Response.substr(Pos + 4);
}

std::unique_ptr<StatusServer> startServer(ServerOptions Opts = {}) {
  std::string Err;
  std::unique_ptr<StatusServer> S = StatusServer::start(std::move(Opts), &Err);
  EXPECT_NE(S, nullptr) << Err;
  return S;
}

TEST(StatusServerTest, EphemeralPortHealthzAndBuildInfo) {
  ServerOptions Opts;
  Opts.Tool = "dlf-test";
  Opts.BuildInfo["benchmark"] = "dbcp";
  auto S = startServer(std::move(Opts));
  ASSERT_NE(S, nullptr);
  EXPECT_NE(S->port(), 0) << "port 0 must resolve to a real ephemeral port";
  EXPECT_EQ(S->address(), "127.0.0.1:" + std::to_string(S->port()));

  std::string R = httpGet(S->port(), "/healthz");
  EXPECT_NE(R.find("HTTP/1.1 200 OK"), std::string::npos) << R;
  EXPECT_EQ(body(R), "ok\n");

  std::string B = httpGet(S->port(), "/buildinfo");
  EXPECT_EQ(headerValue(B, "Content-Type"), "application/json");
  campaign::JsonValue V;
  std::string Err;
  ASSERT_TRUE(campaign::parseJson(body(B), V, &Err)) << Err << "\n" << B;
  EXPECT_EQ(V["tool"].asString(), "dlf-test");
  EXPECT_EQ(V["benchmark"].asString(), "dbcp");

  EXPECT_GE(S->requestsServed(), 2u);
}

TEST(StatusServerTest, RefusesNonLoopbackAddress) {
  ServerOptions Opts;
  Opts.Addr = "0.0.0.0:0";
  std::string Err;
  EXPECT_EQ(StatusServer::start(std::move(Opts), &Err), nullptr);
  EXPECT_NE(Err.find("loopback"), std::string::npos) << Err;

  ServerOptions Opts2;
  Opts2.Addr = "127.0.0.1:notaport";
  EXPECT_EQ(StatusServer::start(std::move(Opts2), &Err), nullptr);
}

TEST(StatusServerTest, MetricsContentTypeInfBucketAndBuildInfoMetric) {
  ServerOptions Opts;
  Opts.Tool = "dlf-test";
  // A provider-side histogram proves the live pull is merged in and that
  // the exposition carries the mandatory +Inf bucket.
  Opts.MetricsProvider = [] {
    telemetry::MetricsSnapshot M;
    M.Counters["dlf_test_scrapes_total"] = 7;
    auto &H = M.Histograms["dlf_test_latency_us"];
    H.observe(4);
    H.observe(4);
    H.observe(4);
    return M;
  };
  auto S = startServer(std::move(Opts));
  ASSERT_NE(S, nullptr);

  // A published snapshot must merge with the provider pull, not shadow it.
  telemetry::MetricsSnapshot Published;
  Published.Counters["dlf_campaign_reps_total"] = 41;
  S->publishMetrics(Published);

  std::string R = httpGet(S->port(), "/metrics");
  EXPECT_EQ(headerValue(R, "Content-Type"), "text/plain; version=0.0.4") << R;
  std::string Text = body(R);
  EXPECT_NE(Text.find("dlf_test_scrapes_total 7"), std::string::npos) << Text;
  EXPECT_NE(Text.find("dlf_campaign_reps_total 41"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("dlf_test_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("dlf_build_info{tool=\"dlf-test\"} 1"),
            std::string::npos)
      << Text;
}

TEST(StatusServerTest, PromLabelEscaping) {
  EXPECT_EQ(promEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(promEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(promEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(promEscapeLabelValue("a\nb"), "a\\nb");

  ServerOptions Opts;
  Opts.Tool = "dlf-test";
  Opts.BuildInfo["benchmark"] = "quote\" slash\\ line\nend";
  Opts.MetricsProvider = [] { return telemetry::MetricsSnapshot(); };
  auto S = startServer(std::move(Opts));
  ASSERT_NE(S, nullptr);
  std::string Text = body(httpGet(S->port(), "/metrics"));
  EXPECT_NE(
      Text.find("benchmark=\"quote\\\" slash\\\\ line\\nend\""),
      std::string::npos)
      << Text;
}

TEST(StatusServerTest, StatusJsonRoundTrip) {
  auto S = startServer();
  ASSERT_NE(S, nullptr);

  CampaignStatus St;
  St.Tool = "dlf-run";
  St.Benchmark = "dbcp";
  St.Phase = "phase2";
  St.Jobs = 2;
  St.CyclesFound = 1;
  St.RepsTotal = 6;
  St.RepsCommitted = 4;
  St.RepsExecuted = 4;
  St.JournalRecords = 5;
  CycleStatus Cy;
  Cy.Index = 0;
  Cy.RepsDone = 4;
  Cy.RepsTotal = 6;
  Cy.Reproduced = 2;
  Cy.Classification = "schedulable";
  St.PerCycle.push_back(Cy);
  WorkerStatus W;
  W.Lane = 0;
  W.Busy = true;
  W.Cycle = 0;
  W.Rep = 4;
  St.Workers.push_back(W);
  St.RepsPerSecond = 12.5;
  S->publishStatus(St);

  std::string R = httpGet(S->port(), "/status");
  EXPECT_EQ(headerValue(R, "Content-Type"), "application/json");
  campaign::JsonValue V;
  std::string Err;
  ASSERT_TRUE(campaign::parseJson(body(R), V, &Err)) << Err << "\n" << R;
  EXPECT_EQ(V["tool"].asString(), "dlf-run");
  EXPECT_EQ(V["benchmark"].asString(), "dbcp");
  EXPECT_EQ(V["phase"].asString(), "phase2");
  EXPECT_EQ(V["progress"]["reps_committed"].asUInt(), 4u);
  EXPECT_EQ(V["progress"]["journal_records"].asUInt(), 5u);
  ASSERT_EQ(V["cycles"].items().size(), 1u);
  EXPECT_EQ(V["cycles"].items()[0]["reps_done"].asUInt(), 4u);
  EXPECT_EQ(V["cycles"].items()[0]["reps_remaining"].asUInt(), 2u);
  EXPECT_EQ(V["cycles"].items()[0]["classification"].asString(),
            "schedulable");
  ASSERT_EQ(V["workers"].items().size(), 1u);
  EXPECT_TRUE(V["workers"].items()[0]["busy"].asBool());
  EXPECT_EQ(V["workers"].items()[0]["rep"].asUInt(), 4u);
}

TEST(StatusServerTest, EventsSseFraming) {
  auto S = startServer();
  ASSERT_NE(S, nullptr);

  CampaignStatus St;
  St.Tool = "dlf-run";
  St.Phase = "phase2";
  S->publishStatus(St);

  int Fd = connectLoopback(S->port());
  ASSERT_GE(Fd, 0);
  std::string Req = "GET /events HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  ASSERT_EQ(::send(Fd, Req.data(), Req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(Req.size()));

  // Header, client-retry hint, and the seeding snapshot come first; only
  // then is the subscriber guaranteed registered for fresh events.
  std::string Accum;
  ASSERT_TRUE(readUntil(Fd, "event: status\n", Accum)) << Accum;
  EXPECT_NE(Accum.find("Content-Type: text/event-stream"), std::string::npos)
      << Accum;
  EXPECT_NE(Accum.find("retry: 2000\n\n"), std::string::npos) << Accum;

  S->publishEvent("commit", "{\"cycle\":0,\"rep\":1}");
  ASSERT_TRUE(readUntil(Fd, "event: commit\ndata: {\"cycle\":0,\"rep\":1}\n\n",
                        Accum))
      << Accum;

  // stop() sends a farewell frame so consumers see an explicit end.
  std::thread Stopper([&] { S->stop(); });
  EXPECT_TRUE(readUntil(Fd, "event: bye\n", Accum)) << Accum;
  Stopper.join();
  ::close(Fd);
}

TEST(StatusServerTest, MethodAndPathErrors) {
  auto S = startServer();
  ASSERT_NE(S, nullptr);

  std::string Post = httpRoundTrip(
      S->port(), "POST /status HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
  EXPECT_NE(Post.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos)
      << Post;
  EXPECT_EQ(headerValue(Post, "Allow"), "GET");

  std::string Missing = httpGet(S->port(), "/nope");
  EXPECT_NE(Missing.find("HTTP/1.1 404 Not Found"), std::string::npos)
      << Missing;

  std::string Huge = "GET /healthz HTTP/1.1\r\nX-Pad: " +
                     std::string(9000, 'x') + "\r\n\r\n";
  std::string TooBig = httpRoundTrip(S->port(), Huge);
  EXPECT_NE(TooBig.find("431"), std::string::npos) << TooBig.substr(0, 200);
}

// The TSan CI tier runs this binary: scrapes from several threads while the
// "analysis" thread keeps publishing, which is exactly the cross-thread
// traffic pattern of a live campaign being watched.
TEST(StatusServerTest, ConcurrentScrapesDuringPublishes) {
  ServerOptions Opts;
  Opts.Tool = "dlf-test";
  auto S = startServer(std::move(Opts));
  ASSERT_NE(S, nullptr);

  std::atomic<bool> Done{false};
  std::thread Publisher([&] {
    unsigned Rep = 0;
    while (!Done.load(std::memory_order_acquire)) {
      CampaignStatus St;
      St.Tool = "dlf-run";
      St.Phase = "phase2";
      St.RepsCommitted = ++Rep;
      S->publishStatus(St);
      S->publishEvent("commit", "{\"rep\":" + std::to_string(Rep) + "}");
      telemetry::MetricsSnapshot M;
      M.Counters["dlf_campaign_reps_total"] = Rep;
      S->publishMetrics(M);
    }
  });

  const char *Paths[] = {"/metrics", "/status", "/healthz", "/buildinfo"};
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Scrapers;
  for (int T = 0; T < 4; ++T) {
    Scrapers.emplace_back([&, T] {
      for (int I = 0; I < 25; ++I) {
        std::string R = httpGet(S->port(), Paths[(T + I) % 4]);
        if (R.find("HTTP/1.1 200 OK") == std::string::npos)
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &Th : Scrapers)
    Th.join();
  Done.store(true, std::memory_order_release);
  Publisher.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GE(S->requestsServed(), 100u);
}

} // namespace
