//===- tests/CampaignTest.cpp - Fault-isolated campaign runner ----------------===//
//
// Exercises the campaign layer bottom-up: the process sandbox against
// injected faults (hangs, SIGTERM-ignoring children, aborts, nonzero
// exits, address-space exhaustion), the JSON/journal round trip including
// torn final lines and CRC salvage of corrupted tails, and the
// CampaignRunner end-to-end — supervised same-seed restarts, quarantine of
// persistently-failing cycles, graceful degradation when the journal
// device fails, and the headline guarantee: a campaign interrupted
// mid-flight (or chaos-faulted) and resumed from its journal produces
// exactly the statistics of an uninterrupted, fault-free one.
//
//===----------------------------------------------------------------------===//

#include "campaign/CampaignRunner.h"
#include "campaign/Journal.h"
#include "campaign/Json.h"
#include "campaign/ProcessSandbox.h"
#include "campaign/WorkerPool.h"
#include "faultinject/FaultInject.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace {

using namespace dlf;
using namespace dlf::campaign;

// -- Process sandbox against injected faults ---------------------------------

TEST(ProcessSandbox, CompletedChildDeliversPayloadAndIsReaped) {
  SandboxResult R = runInSandbox([](int Fd) {
    const char *Msg = "hello sandbox\n";
    (void)!write(Fd, Msg, std::strlen(Msg));
    return 0;
  });
  EXPECT_EQ(R.Status, SandboxStatus::Completed);
  EXPECT_EQ(R.Payload, "hello sandbox\n");
  ASSERT_GT(R.ChildPid, 0);
  // The child must already be reaped: a second wait finds no such child
  // (a zombie would still be waitable).
  int WaitStatus = 0;
  EXPECT_EQ(waitpid(R.ChildPid, &WaitStatus, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(ProcessSandbox, HangingChildIsKilledAndClassifiedHung) {
  SandboxLimits L;
  L.TimeoutMs = 150;
  L.GraceMs = 50;
  SandboxResult R = runInSandbox(
      [](int) {
        for (;;)
          pause();
        return 0;
      },
      L);
  EXPECT_EQ(R.Status, SandboxStatus::Hung);
  // The child had default SIGTERM disposition, so no escalation was needed.
  EXPECT_FALSE(R.TermEscalated);
  EXPECT_EQ(R.TermSignal, SIGTERM);
  EXPECT_GE(R.WallMs, 100.0);
  int WaitStatus = 0;
  EXPECT_EQ(waitpid(R.ChildPid, &WaitStatus, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(ProcessSandbox, SigtermIgnoringChildIsEscalatedToSigkill) {
  SandboxLimits L;
  L.TimeoutMs = 100;
  L.GraceMs = 50;
  SandboxResult R = runInSandbox(
      [](int) {
        signal(SIGTERM, SIG_IGN);
        for (;;)
          pause();
        return 0;
      },
      L);
  EXPECT_EQ(R.Status, SandboxStatus::Hung);
  EXPECT_TRUE(R.TermEscalated);
  EXPECT_EQ(R.TermSignal, SIGKILL);
}

TEST(ProcessSandbox, AbortingChildIsClassifiedSignaled) {
  SandboxLimits L;
  L.CaptureStderr = true;
  SandboxResult R = runInSandbox(
      [](int) {
        fprintf(stderr, "triage breadcrumb before the crash\n");
        abort();
        return 0;
      },
      L);
  EXPECT_EQ(R.Status, SandboxStatus::Signaled);
  EXPECT_EQ(R.TermSignal, SIGABRT);
  EXPECT_NE(R.StderrTail.find("triage breadcrumb"), std::string::npos)
      << R.StderrTail;
  EXPECT_NE(R.triage().find("signal 6"), std::string::npos) << R.triage();
}

TEST(ProcessSandbox, NonzeroExitIsClassifiedExited) {
  SandboxResult R = runInSandbox([](int) { return 7; });
  EXPECT_EQ(R.Status, SandboxStatus::Exited);
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(ProcessSandbox, EscapedExceptionMapsToReservedExitCode) {
  SandboxResult R = runInSandbox(
      [](int) -> int { throw std::runtime_error("child-side failure"); });
  EXPECT_EQ(R.Status, SandboxStatus::Exited);
  EXPECT_EQ(R.ExitCode, ExceptionExitCode);
}

TEST(ProcessSandbox, OversizedPayloadNeverWedgesTheChild) {
  // The child writes far more than both the payload cap and the kernel
  // pipe buffer; the parent must keep draining so the child can finish.
  SandboxLimits L;
  L.MaxPayloadBytes = 1024;
  L.TimeoutMs = 5000;
  SandboxResult R = runInSandbox(
      [](int Fd) {
        std::string Chunk(4096, 'x');
        for (int I = 0; I != 64; ++I)
          (void)!write(Fd, Chunk.data(), Chunk.size());
        return 0;
      },
      L);
  EXPECT_EQ(R.Status, SandboxStatus::Completed);
  EXPECT_LE(R.Payload.size(), 1024u);
}

#if defined(__SANITIZE_ADDRESS__)
#define DLF_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DLF_HAS_ASAN 1
#endif
#endif

TEST(ProcessSandbox, AddressSpaceCapIsClassifiedOutOfMemory) {
#ifdef DLF_HAS_ASAN
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#else
  SandboxLimits L;
  L.AddressSpaceMb = 192;
  L.TimeoutMs = 10'000;
  SandboxResult R = runInSandbox(
      [](int) {
        // Allocate and touch until the cap trips; bad_alloc is mapped to
        // the reserved exit code by the sandbox's child wrapper.
        std::vector<std::unique_ptr<char[]>> Hog;
        for (;;) {
          Hog.push_back(std::make_unique<char[]>(16 << 20));
          std::memset(Hog.back().get(), 1, 16 << 20);
        }
        return 0;
      },
      L);
  EXPECT_EQ(R.Status, SandboxStatus::OutOfMemory);
  EXPECT_EQ(R.ExitCode, OomExitCode);
#endif
}

// -- JSON and journal --------------------------------------------------------

TEST(CampaignJson, RoundTripsNestedValuesDeterministically) {
  JsonValue Rec = JsonValue::object();
  Rec.set("name", "quote\"and\nnewline");
  Rec.set("count", static_cast<uint64_t>(42));
  Rec.set("ok", true);
  JsonValue Arr = JsonValue::array();
  Arr.push(static_cast<uint64_t>(1));
  Arr.push("two");
  Rec.set("items", std::move(Arr));

  std::string Doc = Rec.dump();
  JsonValue Back;
  ASSERT_TRUE(parseJson(Doc, Back));
  EXPECT_EQ(Back.dump(), Doc);
  EXPECT_EQ(Back["name"].asString(), "quote\"and\nnewline");
  EXPECT_EQ(Back["count"].asUInt(), 42u);
  EXPECT_TRUE(Back["ok"].asBool());
  ASSERT_EQ(Back["items"].items().size(), 2u);
  EXPECT_EQ(Back["items"].items()[1].asString(), "two");

  // Keys render sorted, so fingerprint comparison via dump() is stable no
  // matter the insertion order.
  JsonValue A = JsonValue::object();
  A.set("b", 1);
  A.set("a", 2);
  EXPECT_EQ(A.dump(), "{\"a\":2,\"b\":1}");
}

TEST(CampaignJson, RejectsMalformedDocuments) {
  JsonValue V;
  EXPECT_FALSE(parseJson("{", V));
  EXPECT_FALSE(parseJson("{} trailing", V));
  EXPECT_FALSE(parseJson("", V));
  ASSERT_TRUE(parseJson("{\"u\":\"\\u0041\"}", V));
  EXPECT_EQ(V["u"].asString(), "A");
}

class TempFile {
public:
  explicit TempFile(const char *Suffix) {
    Path = ::testing::TempDir() + "dlf-campaign-" +
           std::to_string(getpid()) + "-" + Suffix;
    std::remove(Path.c_str());
  }
  ~TempFile() {
    std::remove(Path.c_str());
    // Artifacts the self-healing paths may leave next to the journal.
    std::remove((Path + ".broken").c_str());
    std::remove((Path + ".corrupt").c_str());
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

/// countsKey() minus the retries field: injected transient faults converge
/// to the fault-free classification counts, but the restarts they forced
/// are (correctly) recorded as retries spent.
std::string classificationKey(const std::string &CountsKey) {
  std::string Out = CountsKey;
  size_t B = Out.find(" retries=");
  if (B == std::string::npos)
    return Out;
  size_t E = Out.find(' ', B + 1);
  Out.erase(B, E == std::string::npos ? std::string::npos : E - B);
  return Out;
}

/// Installs a fault plan for the duration of one test and guarantees the
/// process-global plan is cleared afterwards (gtest shares the process).
class PlanGuard {
public:
  explicit PlanGuard(const std::string &Spec) {
    faultinject::FaultPlan P;
    std::string Error;
    EXPECT_TRUE(P.parse(Spec, &Error)) << Error;
    faultinject::setPlan(std::move(P));
  }
  explicit PlanGuard(faultinject::FaultPlan P) {
    faultinject::setPlan(std::move(P));
  }
  ~PlanGuard() { faultinject::setPlan(faultinject::FaultPlan()); }
};

TEST(CampaignJournal, RoundTripsAndDropsTornFinalLine) {
  TempFile File("journal.jsonl");
  {
    JournalWriter W;
    ASSERT_TRUE(W.open(File.path(), /*Truncate=*/true));
    JsonValue Header = JsonValue::object();
    Header.set("v", 1);
    ASSERT_TRUE(W.append(Header));
    JsonValue Rec = JsonValue::object();
    Rec.set("event", "rep");
    ASSERT_TRUE(W.append(Rec));
  }
  // Simulate dying mid-append: a torn, unterminated final line.
  {
    std::FILE *F = std::fopen(File.path().c_str(), "a");
    ASSERT_NE(F, nullptr);
    std::fputs("{\"event\":\"re", F);
    std::fclose(F);
  }
  JournalContents JC;
  std::string Error;
  ASSERT_TRUE(loadJournal(File.path(), JC, &Error)) << Error;
  EXPECT_EQ(JC.Header["v"].asUInt(), 1u);
  ASSERT_EQ(JC.Records.size(), 1u);
  EXPECT_EQ(JC.Records[0]["event"].asString(), "rep");
}

// -- Campaign end-to-end -----------------------------------------------------

/// ABBA with a stagger (the paper's Figure 1 shape): deadlock-prone by
/// construction, rarely deadlocks under unbiased schedules.
void abbaProgram() {
  Mutex A("ca", DLF_SITE());
  Mutex B("cb", DLF_SITE());
  Thread T1([&] {
    for (int I = 0; I != 4; ++I)
      yieldNow();
    MutexGuard First(A, DLF_NAMED_SITE("camp:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("camp:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("camp:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("camp:t2a"));
  });
  T1.join();
  T2.join();
}

CampaignConfig baseConfig(const std::string &JournalPath) {
  CampaignConfig CC;
  CC.BenchmarkName = "campaign-test-abba";
  CC.Entry = abbaProgram;
  CC.Tester.PhaseTwoReps = 4;
  CC.BackoffBaseMs = 1;
  CC.JournalPath = JournalPath;
  return CC;
}

TEST(Campaign, HealthyWorkloadCompletesAndReproduces) {
  TempFile File("healthy.jsonl");
  CampaignRunner Runner(baseConfig(File.path()));
  CampaignReport R = Runner.run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_TRUE(R.CampaignComplete);
  EXPECT_TRUE(R.PhaseOneCompleted);
  ASSERT_EQ(R.PerCycle.size(), 1u);
  EXPECT_EQ(R.PerCycle[0].Reps, 4u);
  EXPECT_EQ(R.PerCycle[0].Reproduced, 4u) << R.toString();
  EXPECT_EQ(R.RepsExecuted, 4u);
  EXPECT_EQ(R.RepsReplayed, 0u);
}

TEST(Campaign, TransientCrashIsRestartedWithTheSameSeed) {
  TempFile File("retry.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.MaxRetries = 2;
  // Every repetition's first attempt crashes; the supervised restart reruns
  // the repetition with the same seed, so the final classification is the
  // fault-free one (asserted below: all four repetitions reproduce).
  CC.ChildFaultHook = [](unsigned, unsigned, unsigned Attempt) {
    if (Attempt == 0)
      abort();
  };
  CampaignRunner Runner(std::move(CC));
  CampaignReport R = Runner.run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_TRUE(R.CampaignComplete);
  ASSERT_EQ(R.PerCycle.size(), 1u);
  const CycleCampaignStats &S = R.PerCycle[0];
  EXPECT_EQ(S.Reproduced, 4u) << R.toString();
  EXPECT_EQ(S.RetriesSpent, 4u);
  // Final classifications carry no trace of the retried crashes.
  EXPECT_EQ(S.CrashedSignal, 0u);
  EXPECT_FALSE(S.Quarantined);
}

TEST(Campaign, PersistentHangQuarantinesTheCycleNotTheCampaign) {
  TempFile File("quarantine.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.RunTimeoutMs = 100;
  CC.GraceMs = 40;
  CC.MaxRetries = 0;
  CC.QuarantineThreshold = 2;
  CC.ChildFaultHook = [](unsigned, unsigned, unsigned) {
    for (;;)
      pause();
  };
  CampaignRunner Runner(std::move(CC));
  CampaignReport R = Runner.run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  // The campaign still runs to completion; the broken cycle is set aside
  // with a diagnostic instead of aborting everything.
  EXPECT_TRUE(R.CampaignComplete);
  ASSERT_EQ(R.PerCycle.size(), 1u);
  const CycleCampaignStats &S = R.PerCycle[0];
  EXPECT_TRUE(S.Quarantined);
  EXPECT_EQ(S.Hung, 2u) << R.toString();
  EXPECT_EQ(S.Reps, 2u);
  EXPECT_NE(S.QuarantineReason.find("consecutive failed"), std::string::npos)
      << S.QuarantineReason;
}

TEST(Campaign, ResumeAfterInterruptMatchesUninterruptedStatistics) {
  TempFile Interrupted("interrupted.jsonl");
  TempFile Control("control.jsonl");

  // Interrupt after three fresh repetitions, mid-campaign.
  CampaignConfig CC = baseConfig(Interrupted.path());
  auto Checks = std::make_shared<int>(0);
  CC.ShouldStop = [Checks] { return ++*Checks > 3; };
  CampaignReport Partial = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(Partial.Error.empty()) << Partial.Error;
  EXPECT_TRUE(Partial.Interrupted);
  EXPECT_FALSE(Partial.CampaignComplete);
  EXPECT_EQ(Partial.RepsExecuted, 3u);

  // Resume from the journal with a fresh runner (as a new process would).
  CampaignReport Resumed =
      CampaignRunner(baseConfig(Interrupted.path())).run(/*Resume=*/true);
  ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
  EXPECT_TRUE(Resumed.CampaignComplete);
  EXPECT_EQ(Resumed.RepsReplayed, 3u);
  EXPECT_EQ(Resumed.RepsExecuted, 1u);

  // Control: the same campaign, never interrupted.
  CampaignReport Full = CampaignRunner(baseConfig(Control.path())).run();
  ASSERT_TRUE(Full.Error.empty()) << Full.Error;
  ASSERT_EQ(Resumed.PerCycle.size(), Full.PerCycle.size());
  for (size_t I = 0; I != Full.PerCycle.size(); ++I)
    EXPECT_EQ(Resumed.PerCycle[I].countsKey(), Full.PerCycle[I].countsKey())
        << "cycle #" << I;

  // A completed journal replays entirely: zero fresh executions.
  CampaignReport Replayed =
      CampaignRunner(baseConfig(Interrupted.path())).run(/*Resume=*/true);
  ASSERT_TRUE(Replayed.Error.empty()) << Replayed.Error;
  EXPECT_EQ(Replayed.RepsExecuted, 0u);
  EXPECT_EQ(Replayed.RepsReplayed, 4u);
}

// -- Worker pool -------------------------------------------------------------

TEST(WorkerPool, RunsChildrenConcurrentlyAndReportsPeak) {
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.jobs(), 4u);
  SandboxLimits L;
  L.TimeoutMs = 10'000;
  for (int I = 0; I != 4; ++I)
    Pool.launch(
        [](int) {
          usleep(100 * 1000);
          return 0;
        },
        L);
  EXPECT_EQ(Pool.inFlight(), 4u);
  std::vector<PoolCompletion> Done;
  Pool.drainAll(Done);
  ASSERT_EQ(Done.size(), 4u);
  EXPECT_EQ(Pool.peakConcurrency(), 4u);
  EXPECT_EQ(Pool.inFlight(), 0u);
  for (const PoolCompletion &PC : Done)
    EXPECT_EQ(PC.Result.Status, SandboxStatus::Completed);
}

TEST(WorkerPool, CancelKillsAndReapsTheChildImmediately) {
  WorkerPool Pool(2);
  SandboxLimits L;
  L.TimeoutMs = 60'000; // the cancel, not the watchdog, must end the child
  uint64_t Ticket = Pool.launch(
      [](int) {
        for (;;)
          pause();
        return 0;
      },
      L);
  EXPECT_EQ(Pool.inFlight(), 1u);
  Pool.cancel(Ticket);
  EXPECT_EQ(Pool.inFlight(), 0u);
  int WaitStatus = 0;
  EXPECT_EQ(waitpid(-1, &WaitStatus, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

// -- Parallel campaigns ------------------------------------------------------

/// Two disjoint ABBA pairs across four threads: phase 1 reports two
/// independent cycles, so parallel sharding crosses cycle boundaries.
void doubleAbbaProgram() {
  Mutex A("p2a", DLF_SITE());
  Mutex B("p2b", DLF_SITE());
  Mutex C("p2c", DLF_SITE());
  Mutex D("p2d", DLF_SITE());
  Thread T1([&] {
    for (int I = 0; I != 4; ++I)
      yieldNow();
    MutexGuard First(A, DLF_NAMED_SITE("par:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("par:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("par:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("par:t2a"));
  });
  Thread T3([&] {
    for (int I = 0; I != 4; ++I)
      yieldNow();
    MutexGuard First(C, DLF_NAMED_SITE("par:t3c"));
    MutexGuard Second(D, DLF_NAMED_SITE("par:t3d"));
  });
  Thread T4([&] {
    MutexGuard First(D, DLF_NAMED_SITE("par:t4d"));
    MutexGuard Second(C, DLF_NAMED_SITE("par:t4c"));
  });
  T1.join();
  T2.join();
  T3.join();
  T4.join();
}

CampaignConfig doubleConfig(const std::string &JournalPath) {
  CampaignConfig CC;
  CC.BenchmarkName = "campaign-test-double-abba";
  CC.Entry = doubleAbbaProgram;
  CC.Tester.PhaseTwoReps = 4;
  CC.BackoffBaseMs = 1;
  CC.JournalPath = JournalPath;
  return CC;
}

/// The deterministic identity of every journaled repetition, in journal
/// order: the parallel campaign must write record-for-record what the
/// serial campaign writes.
std::vector<std::string> journaledRepKeys(const std::string &Path) {
  JournalContents JC;
  std::string Error;
  EXPECT_TRUE(loadJournal(Path, JC, &Error)) << Error;
  std::vector<std::string> Keys;
  for (const JsonValue &R : JC.Records)
    if (R["event"].asString() == "rep")
      Keys.push_back(std::to_string(R["cycle"].asUInt()) + "/" +
                     std::to_string(R["rep"].asUInt()) + " seed=" +
                     std::to_string(R["seed"].asUInt()) + " class=" +
                     R["class"].asString() + " attempts=" +
                     std::to_string(R["attempts"].asUInt()));
  return Keys;
}

TEST(Campaign, ParallelCountsAndJournalMatchSerialExactly) {
  TempFile SerialJ("eq-serial.jsonl");
  TempFile ParallelJ("eq-parallel.jsonl");

  CampaignReport Serial = CampaignRunner(doubleConfig(SerialJ.path())).run();
  ASSERT_TRUE(Serial.Error.empty()) << Serial.Error;
  ASSERT_TRUE(Serial.CampaignComplete);
  ASSERT_GE(Serial.PerCycle.size(), 2u);

  CampaignConfig PC = doubleConfig(ParallelJ.path());
  PC.Jobs = 4;
  CampaignReport Parallel = CampaignRunner(std::move(PC)).run();
  ASSERT_TRUE(Parallel.Error.empty()) << Parallel.Error;
  ASSERT_TRUE(Parallel.CampaignComplete);
  EXPECT_EQ(Parallel.JobsUsed, 4u);

  ASSERT_EQ(Serial.PerCycle.size(), Parallel.PerCycle.size());
  for (size_t I = 0; I != Serial.PerCycle.size(); ++I)
    EXPECT_EQ(Serial.PerCycle[I].countsKey(), Parallel.PerCycle[I].countsKey())
        << "cycle #" << I;
  EXPECT_EQ(journaledRepKeys(SerialJ.path()),
            journaledRepKeys(ParallelJ.path()));
}

TEST(Campaign, JournalsResumeAcrossSerialAndParallelModes) {
  TempFile Control("cross-control.jsonl");
  CampaignReport Full = CampaignRunner(baseConfig(Control.path())).run();
  ASSERT_TRUE(Full.Error.empty()) << Full.Error;

  // Serial campaign interrupted, resumed in parallel.
  {
    TempFile J("cross-s2p.jsonl");
    CampaignConfig CC = baseConfig(J.path());
    auto Checks = std::make_shared<int>(0);
    CC.ShouldStop = [Checks] { return ++*Checks > 2; };
    CampaignReport Partial = CampaignRunner(std::move(CC)).run();
    ASSERT_TRUE(Partial.Error.empty()) << Partial.Error;
    ASSERT_TRUE(Partial.Interrupted);

    CampaignConfig RC = baseConfig(J.path());
    RC.Jobs = 4; // deliberately not in the fingerprint
    CampaignReport Resumed = CampaignRunner(std::move(RC)).run(true);
    ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
    EXPECT_TRUE(Resumed.CampaignComplete);
    EXPECT_EQ(Resumed.RepsReplayed, 2u);
    ASSERT_EQ(Resumed.PerCycle.size(), Full.PerCycle.size());
    for (size_t I = 0; I != Full.PerCycle.size(); ++I)
      EXPECT_EQ(Resumed.PerCycle[I].countsKey(), Full.PerCycle[I].countsKey());
  }

  // Parallel campaign interrupted, resumed serially.
  {
    TempFile J("cross-p2s.jsonl");
    CampaignConfig CC = baseConfig(J.path());
    CC.Jobs = 4;
    auto Checks = std::make_shared<int>(0);
    CC.ShouldStop = [Checks] { return ++*Checks > 2; };
    CampaignReport Partial = CampaignRunner(std::move(CC)).run();
    ASSERT_TRUE(Partial.Error.empty()) << Partial.Error;
    ASSERT_TRUE(Partial.Interrupted);
    EXPECT_LT(Partial.RepsExecuted, 4u);

    CampaignReport Resumed = CampaignRunner(baseConfig(J.path())).run(true);
    ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
    EXPECT_TRUE(Resumed.CampaignComplete);
    ASSERT_EQ(Resumed.PerCycle.size(), Full.PerCycle.size());
    for (size_t I = 0; I != Full.PerCycle.size(); ++I)
      EXPECT_EQ(Resumed.PerCycle[I].countsKey(), Full.PerCycle[I].countsKey());
  }
}

TEST(Campaign, ParallelRetryMatchesSerialSemantics) {
  TempFile File("par-retry.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.Jobs = 4;
  CC.MaxRetries = 2;
  CC.ChildFaultHook = [](unsigned, unsigned, unsigned Attempt) {
    if (Attempt == 0)
      abort();
  };
  CampaignReport R = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_TRUE(R.CampaignComplete);
  ASSERT_EQ(R.PerCycle.size(), 1u);
  const CycleCampaignStats &S = R.PerCycle[0];
  EXPECT_EQ(S.Reproduced, 4u) << R.toString();
  EXPECT_EQ(S.RetriesSpent, 4u);
  EXPECT_EQ(S.CrashedSignal, 0u);
}

TEST(Campaign, ParallelQuarantineJournalsNothingPastTheThreshold) {
  TempFile File("par-quarantine.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.Jobs = 4;
  CC.RunTimeoutMs = 100;
  CC.GraceMs = 40;
  CC.MaxRetries = 0;
  CC.QuarantineThreshold = 2;
  CC.ChildFaultHook = [](unsigned, unsigned, unsigned) {
    for (;;)
      pause();
  };
  CampaignReport R = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_TRUE(R.CampaignComplete);
  ASSERT_EQ(R.PerCycle.size(), 1u);
  const CycleCampaignStats &S = R.PerCycle[0];
  EXPECT_TRUE(S.Quarantined);
  EXPECT_EQ(S.Hung, 2u) << R.toString();
  EXPECT_EQ(S.Reps, 2u);
  // Speculative repetitions past the quarantine point were in flight but
  // must never be journaled: the record set matches the serial campaign.
  EXPECT_EQ(journaledRepKeys(File.path()).size(), 2u);
}

TEST(Campaign, SigintDrainsInFlightChildrenWithoutZombies) {
  TempFile J("sigint.jsonl");
  TempFile Control("sigint-control.jsonl");

  CampaignConfig CC = baseConfig(J.path());
  CC.Jobs = 4;
  auto Checks = std::make_shared<int>(0);
  CC.ShouldStop = [Checks] {
    if (++*Checks == 2)
      raise(SIGINT); // arrives mid-dispatch with children in flight
    return false;
  };
  CampaignRunner::installSigintHandler();
  CampaignReport Partial = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(Partial.Error.empty()) << Partial.Error;
  EXPECT_TRUE(Partial.Interrupted);
  EXPECT_FALSE(Partial.CampaignComplete);
  // The drain reaped every child: no zombies left behind.
  int WaitStatus = 0;
  EXPECT_EQ(waitpid(-1, &WaitStatus, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);

  // The journal is a clean prefix; resuming completes the campaign with
  // the uninterrupted statistics.
  CampaignReport Resumed = CampaignRunner(baseConfig(J.path())).run(true);
  ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
  EXPECT_TRUE(Resumed.CampaignComplete);
  CampaignReport Full = CampaignRunner(baseConfig(Control.path())).run();
  ASSERT_TRUE(Full.Error.empty()) << Full.Error;
  ASSERT_EQ(Resumed.PerCycle.size(), Full.PerCycle.size());
  for (size_t I = 0; I != Full.PerCycle.size(); ++I)
    EXPECT_EQ(Resumed.PerCycle[I].countsKey(), Full.PerCycle[I].countsKey());
}

// -- Journal durability ------------------------------------------------------

TEST(CampaignJournal, AppendFailureIsReportedNotIgnored) {
  if (access("/dev/full", W_OK) != 0)
    GTEST_SKIP() << "/dev/full not available";
  JournalWriter W;
  ASSERT_TRUE(W.open("/dev/full", /*Truncate=*/true));
  JsonValue Rec = JsonValue::object();
  Rec.set("event", "rep");
  EXPECT_FALSE(W.append(Rec));
  EXPECT_FALSE(W.lastError().empty());
}

TEST(Campaign, JournalWriteFailureDegradesToInMemory) {
  // A dead journal device must not kill the campaign: results are computed
  // in-memory, the report is flagged non-resumable, and the unusable
  // journal is set aside as `.broken`.
  TempFile J("degraded.jsonl");
  TempFile Control("degraded-control.jsonl");
  CampaignReport Degraded = [&] {
    PlanGuard G("journal.fsync:enospc@always");
    return CampaignRunner(baseConfig(J.path())).run();
  }();
  ASSERT_TRUE(Degraded.Error.empty()) << Degraded.Error;
  EXPECT_TRUE(Degraded.CampaignComplete);
  EXPECT_TRUE(Degraded.JournalDegraded);
  EXPECT_NE(Degraded.JournalError.find("fsync"), std::string::npos)
      << Degraded.JournalError;
  EXPECT_NE(Degraded.toString().find("journal degraded"), std::string::npos);
  // The journal was renamed out of the way so a later --resume cannot pick
  // up a known-incomplete record stream.
  EXPECT_EQ(access((J.path() + ".broken").c_str(), F_OK), 0);
  EXPECT_NE(access(J.path().c_str(), F_OK), 0);

  // Degradation is invisible to the statistics: counts match a campaign
  // whose journal worked.
  CampaignReport Full = CampaignRunner(baseConfig(Control.path())).run();
  ASSERT_TRUE(Full.Error.empty()) << Full.Error;
  ASSERT_EQ(Degraded.PerCycle.size(), Full.PerCycle.size());
  for (size_t I = 0; I != Full.PerCycle.size(); ++I)
    EXPECT_EQ(Degraded.PerCycle[I].countsKey(), Full.PerCycle[I].countsKey());
}

TEST(Campaign, InjectedSpawnFailureIsRestartedAndConverges) {
  TempFile J("spawn.jsonl");
  TempFile Control("spawn-control.jsonl");
  CampaignReport Faulted = [&] {
    PlanGuard G("worker.spawn:eagain@1;worker.spawn:eagain@3");
    CampaignConfig CC = baseConfig(J.path());
    CC.MaxRetries = 2;
    return CampaignRunner(std::move(CC)).run();
  }();
  ASSERT_TRUE(Faulted.Error.empty()) << Faulted.Error;
  EXPECT_TRUE(Faulted.CampaignComplete);

  CampaignReport Full = CampaignRunner(baseConfig(Control.path())).run();
  ASSERT_TRUE(Full.Error.empty()) << Full.Error;
  ASSERT_EQ(Faulted.PerCycle.size(), Full.PerCycle.size());
  for (size_t I = 0; I != Full.PerCycle.size(); ++I)
    EXPECT_EQ(classificationKey(Faulted.PerCycle[I].countsKey()),
              classificationKey(Full.PerCycle[I].countsKey()));
}

TEST(Campaign, ResumeAfterMidFileCorruptionSalvagesThePrefix) {
  TempFile J("corrupt.jsonl");
  TempFile Control("corrupt-control.jsonl");

  // Interrupt after three repetitions so the journal holds a header plus
  // several rep records.
  CampaignConfig CC = baseConfig(J.path());
  auto Checks = std::make_shared<int>(0);
  CC.ShouldStop = [Checks] { return ++*Checks > 3; };
  CampaignReport Partial = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(Partial.Error.empty()) << Partial.Error;
  EXPECT_EQ(Partial.RepsExecuted, 3u);

  // Corrupt one byte in the middle of the fourth line — the second rep
  // record (after the header and phase-1 records): its CRC no longer
  // matches, so salvage must keep everything before it and quarantine it
  // and everything after (the third rep and the `interrupted` marker).
  std::string Text;
  {
    std::FILE *F = std::fopen(J.path().c_str(), "rb");
    ASSERT_NE(F, nullptr);
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Text.append(Buf, N);
    std::fclose(F);
  }
  std::vector<size_t> LineStarts = {0};
  for (size_t I = 0; I + 1 < Text.size(); ++I)
    if (Text[I] == '\n')
      LineStarts.push_back(I + 1);
  ASSERT_GE(LineStarts.size(), 6u) << Text;
  size_t Victim = LineStarts[3] + 8; // inside the fourth line's JSON
  Text[Victim] = Text[Victim] == '#' ? '%' : '#';
  {
    std::FILE *F = std::fopen(J.path().c_str(), "wb");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fwrite(Text.data(), 1, Text.size(), F), Text.size());
    std::fclose(F);
  }

  // Resume: the salvaged prefix (header + one rep) replays, the dropped
  // repetitions re-execute with their original seeds, and the final
  // statistics match an uninterrupted fault-free campaign.
  CampaignReport Resumed = CampaignRunner(baseConfig(J.path())).run(true);
  ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
  EXPECT_TRUE(Resumed.CampaignComplete);
  EXPECT_EQ(Resumed.JournalTailDropped, 3u);
  EXPECT_EQ(Resumed.RepsReplayed, 1u);
  EXPECT_EQ(Resumed.RepsExecuted, 3u);
  // The corrupt tail is preserved for forensics, not silently discarded.
  EXPECT_EQ(access((J.path() + ".corrupt").c_str(), F_OK), 0);

  CampaignReport Full = CampaignRunner(baseConfig(Control.path())).run();
  ASSERT_TRUE(Full.Error.empty()) << Full.Error;
  ASSERT_EQ(Resumed.PerCycle.size(), Full.PerCycle.size());
  for (size_t I = 0; I != Full.PerCycle.size(); ++I)
    EXPECT_EQ(Resumed.PerCycle[I].countsKey(), Full.PerCycle[I].countsKey());

  // The truncated journal is a clean prefix again: a further resume replays
  // everything without re-executing.
  CampaignReport Replayed = CampaignRunner(baseConfig(J.path())).run(true);
  ASSERT_TRUE(Replayed.Error.empty()) << Replayed.Error;
  EXPECT_EQ(Replayed.RepsExecuted, 0u);
  EXPECT_EQ(Replayed.RepsReplayed, 4u);
}

TEST(Campaign, ChaosPlanConvergesToFaultFreeCounts) {
  // A generated chaos plan injects only transient faults (child crashes and
  // hangs, spawn failures, sidecar loss, at most a one-shot journal error);
  // supervised same-seed restarts must converge every repetition to its
  // fault-free classification.
  TempFile Control("chaos-control.jsonl");
  CampaignReport Full = CampaignRunner(baseConfig(Control.path())).run();
  ASSERT_TRUE(Full.Error.empty()) << Full.Error;

  TempFile J("chaos.jsonl");
  CampaignReport R = [&] {
    PlanGuard G(faultinject::FaultPlan::chaos(/*Seed=*/7));
    CampaignConfig CC = baseConfig(J.path());
    CC.MaxRetries = 5;
    CC.RunTimeoutMs = 2000; // injected hangs trip the watchdog quickly
    CC.GraceMs = 100;
    return CampaignRunner(std::move(CC)).run();
  }();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_TRUE(R.CampaignComplete);
  ASSERT_EQ(R.PerCycle.size(), Full.PerCycle.size());
  for (size_t I = 0; I != Full.PerCycle.size(); ++I)
    EXPECT_EQ(classificationKey(R.PerCycle[I].countsKey()),
              classificationKey(Full.PerCycle[I].countsKey()))
        << R.toString();
}

TEST(Campaign, ResumeRejectsAMismatchedConfiguration) {
  TempFile File("mismatch.jsonl");
  CampaignReport First = CampaignRunner(baseConfig(File.path())).run();
  ASSERT_TRUE(First.Error.empty()) << First.Error;

  CampaignConfig Changed = baseConfig(File.path());
  Changed.Tester.PhaseTwoReps = 9; // part of the journal fingerprint
  CampaignReport R = CampaignRunner(std::move(Changed)).run(/*Resume=*/true);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_NE(R.Error.find("does not match"), std::string::npos) << R.Error;
}

// -- Phase 1 engines ----------------------------------------------------------

/// Gate-protected inversion: the cycle exists but a common guard lock makes
/// it unrealizable (both engines must discharge it).
void gateProgram() {
  Mutex G("cg", DLF_SITE());
  Mutex A("ca", DLF_SITE());
  Mutex B("cb", DLF_SITE());
  Thread T1([&] {
    MutexGuard Gate(G, DLF_NAMED_SITE("camp:t1g"));
    MutexGuard First(A, DLF_NAMED_SITE("camp:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("camp:t1b"));
  });
  Thread T2([&] {
    MutexGuard Gate(G, DLF_NAMED_SITE("camp:t2g"));
    MutexGuard First(B, DLF_NAMED_SITE("camp:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("camp:t2a"));
  });
  T1.join();
  T2.join();
}

TEST(CampaignPhase1, PredictEngineCertifiesTheAbbaCycle) {
  TempFile File("predict-abba.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.Phase1 = Phase1Engine::Predict;
  CampaignReport R = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  ASSERT_EQ(R.PerCycle.size(), 1u);
  EXPECT_EQ(R.PerCycle[0].Prediction.rfind("PREDICTED-SOUND", 0), 0u)
      << R.PerCycle[0].Prediction;
  EXPECT_FALSE(R.PerCycle[0].Skipped);
  EXPECT_EQ(R.PerCycle[0].Reproduced, 4u) << R.toString();
}

TEST(CampaignPhase1, PredictEngineSkipsAGuardDischargedCycle) {
  TempFile File("predict-gate.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.BenchmarkName = "campaign-test-gate";
  CC.Entry = gateProgram;
  CC.Phase1 = Phase1Engine::Predict;
  CampaignReport R = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  ASSERT_EQ(R.PerCycle.size(), 1u);
  EXPECT_TRUE(R.PerCycle[0].Skipped);
  EXPECT_EQ(R.PerCycle[0].Reps, 0u) << "discharged cycles get no budget";
  EXPECT_EQ(R.PerCycle[0].Prediction.rfind("UNCONFIRMED", 0), 0u)
      << R.PerCycle[0].Prediction;
  EXPECT_EQ(R.RepsExecuted, 0u);
}

TEST(CampaignPhase1, BothModeReportsVerdictsAndSpendsBudget) {
  TempFile File("both-abba.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.Phase1 = Phase1Engine::Both;
  CampaignReport R = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  ASSERT_EQ(R.PerCycle.size(), 1u);
  EXPECT_FALSE(R.PerCycle[0].Prediction.empty());
  EXPECT_EQ(R.PerCycle[0].Reproduced, 4u) << R.toString();
}

TEST(CampaignPhase1, ResumeReplaysPredictionsFromTheJournal) {
  TempFile File("predict-resume.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.Phase1 = Phase1Engine::Predict;
  auto Checks = std::make_shared<int>(0);
  CC.ShouldStop = [Checks] { return ++*Checks > 2; };
  CampaignReport Partial = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(Partial.Error.empty()) << Partial.Error;
  ASSERT_TRUE(Partial.Interrupted);

  CampaignConfig RC = baseConfig(File.path());
  RC.Phase1 = Phase1Engine::Predict;
  CampaignReport Resumed = CampaignRunner(std::move(RC)).run(/*Resume=*/true);
  ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
  EXPECT_TRUE(Resumed.CampaignComplete);
  ASSERT_EQ(Resumed.PerCycle.size(), 1u);
  EXPECT_EQ(Resumed.PerCycle[0].Prediction.rfind("PREDICTED-SOUND", 0), 0u)
      << "the prediction must survive the journal round trip: "
      << Resumed.PerCycle[0].Prediction;
  EXPECT_GT(Resumed.RepsReplayed, 0u);
}

TEST(CampaignPhase1, EngineIsPartOfTheJournalFingerprint) {
  TempFile File("predict-fence.jsonl");
  CampaignConfig CC = baseConfig(File.path());
  CC.Phase1 = Phase1Engine::Predict;
  CampaignReport First = CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(First.Error.empty()) << First.Error;

  CampaignConfig Changed = baseConfig(File.path()); // igoodlock default
  CampaignReport R = CampaignRunner(std::move(Changed)).run(/*Resume=*/true);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_NE(R.Error.find("does not match"), std::string::npos) << R.Error;
}

TEST(CampaignPhase1, EngineNamesRoundTrip) {
  for (Phase1Engine E : {Phase1Engine::IGoodlock, Phase1Engine::Predict,
                         Phase1Engine::Both}) {
    Phase1Engine Back = Phase1Engine::IGoodlock;
    ASSERT_TRUE(phase1EngineFromName(phase1EngineName(E), Back))
        << phase1EngineName(E);
    EXPECT_EQ(Back, E);
  }
  Phase1Engine Out;
  EXPECT_FALSE(phase1EngineFromName("bogus", Out));
  EXPECT_FALSE(phase1EngineFromName("", Out));
}

} // namespace
