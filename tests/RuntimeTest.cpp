//===- tests/RuntimeTest.cpp - runtime/ unit tests ---------------------------===//

#include "fuzzer/RandomStrategy.h"
#include "igoodlock/LockDependency.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

namespace {

using namespace dlf;

ExecutionResult runActive(const std::function<void()> &Entry,
                          uint64_t Seed = 1,
                          DependencyRecorder *Recorder = nullptr) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  Opts.Seed = Seed;
  Opts.RecordDependencies = Recorder != nullptr;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy, Recorder);
  return RT.run(Entry);
}

// -- Mutex without a runtime ------------------------------------------------------

TEST(MutexStandalone, RecursiveLocking) {
  Mutex M("standalone");
  M.lock();
  EXPECT_TRUE(M.heldByCurrentThread());
  M.lock(); // re-entrant
  M.unlock();
  EXPECT_TRUE(M.heldByCurrentThread()) << "still held after inner unlock";
  M.unlock();
  EXPECT_FALSE(M.heldByCurrentThread());
}

TEST(MutexStandalone, MutualExclusionAcrossOsThreads) {
  Mutex M("excl");
  int Counter = 0;
  std::vector<std::thread> Workers;
  for (int T = 0; T != 4; ++T) {
    Workers.emplace_back([&] {
      for (int I = 0; I != 2000; ++I) {
        MutexGuard Guard(M, Label());
        ++Counter;
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Counter, 8000);
}

TEST(MutexStandalone, GuardReleasesOnScopeExit) {
  Mutex M("guard");
  {
    MutexGuard Guard(M, Label());
    EXPECT_TRUE(M.heldByCurrentThread());
  }
  EXPECT_FALSE(M.heldByCurrentThread());
}

// -- Passthrough mode ---------------------------------------------------------------

TEST(PassthroughMode, RunsToCompletion) {
  Options Opts;
  Opts.Mode = RunMode::Passthrough;
  Runtime RT(Opts);
  int Sum = 0;
  ExecutionResult R = RT.run([&] {
    Mutex M("p");
    Thread T([&] {
      MutexGuard Guard(M, Label());
      Sum += 1;
    });
    T.join();
    MutexGuard Guard(M, Label());
    Sum += 2;
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(Sum, 3);
  EXPECT_EQ(R.AcquireEvents, 0u) << "passthrough must not instrument";
}

// -- Record mode ----------------------------------------------------------------------

TEST(RecordMode, RecordsDependenciesFromRealConcurrency) {
  Options Opts;
  Opts.Mode = RunMode::Record;
  LockDependencyLog Log;
  Runtime RT(Opts, nullptr, &Log);
  ExecutionResult R = RT.run([] {
    Mutex Outer("outer", DLF_SITE());
    Mutex Inner("inner", DLF_SITE());
    Thread T([&] {
      MutexGuard A(Outer, DLF_NAMED_SITE("rec:outer"));
      MutexGuard B(Inner, DLF_NAMED_SITE("rec:inner"));
    });
    T.join();
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 2u);
  ASSERT_EQ(Log.entries().size(), 2u);
  // Second entry: inner acquired while outer held.
  const DependencyEntry &Nested = Log.entries()[1];
  EXPECT_EQ(Nested.Held.size(), 1u);
  EXPECT_EQ(Nested.Context.size(), 2u);
  EXPECT_EQ(Nested.Context[0], Label::intern("rec:outer"));
  EXPECT_EQ(Nested.Context[1], Label::intern("rec:inner"));
}

TEST(RecordMode, ReentrantAcquiresInvisible) {
  Options Opts;
  Opts.Mode = RunMode::Record;
  LockDependencyLog Log;
  Runtime RT(Opts, nullptr, &Log);
  RT.run([] {
    Mutex M("reent", DLF_SITE());
    M.lock(DLF_SITE());
    M.lock(DLF_SITE()); // re-acquire: no event (footnote 2)
    M.unlock();
    M.unlock();
  });
  EXPECT_EQ(Log.acquireEvents(), 1u);
}

// -- Active mode ------------------------------------------------------------------------

TEST(ActiveMode, SerializesUserCode) {
  // Unsynchronized increments would race under real concurrency; under the
  // serialized scheduler every interleaving is atomic between yield points,
  // so the total is always exact.
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    int Counter = 0;
    ExecutionResult R = runActive(
        [&] {
          std::vector<Thread> Workers;
          for (int T = 0; T != 4; ++T) {
            Workers.emplace_back(Thread([&Counter] {
              for (int I = 0; I != 50; ++I) {
                int Old = Counter; // racy read...
                yieldNow();        // ...with a scheduling point in between
                Counter = Old + 1; // would lose updates if truly parallel
              }
            }));
          }
          for (Thread &W : Workers)
            W.join();
        },
        Seed);
    EXPECT_TRUE(R.Completed);
    // Lost updates are *possible* by schedule (that's the point of the
    // read-yield-write), but the run must complete deterministically.
    EXPECT_GT(Counter, 0);
  }
}

TEST(ActiveMode, SameSeedSameSchedule) {
  auto Program = [](std::vector<int> *Order) {
    Mutex M("m", DLF_SITE());
    std::vector<Thread> Workers;
    for (int T = 0; T != 3; ++T) {
      Workers.emplace_back(Thread([&M, Order, T] {
        for (int I = 0; I != 5; ++I) {
          MutexGuard Guard(M, DLF_NAMED_SITE("order:acq"));
          Order->push_back(T);
        }
      }));
    }
    for (Thread &W : Workers)
      W.join();
  };
  std::vector<int> First, Second, Third;
  runActive([&] { Program(&First); }, 7);
  runActive([&] { Program(&Second); }, 7);
  runActive([&] { Program(&Third); }, 8);
  EXPECT_EQ(First, Second) << "same seed must replay the same schedule";
  EXPECT_EQ(First.size(), Third.size());
  // Seeds 7 and 8 *may* coincide, but over 15 interleaved acquisitions it
  // is overwhelmingly unlikely; treat equality as a failure signal.
  EXPECT_NE(First, Third) << "different seeds produced identical schedules";
}

TEST(ActiveMode, CountsAcquireEventsAndSteps) {
  ExecutionResult R = runActive([] {
    Mutex M("count", DLF_SITE());
    Thread T([&M] {
      for (int I = 0; I != 10; ++I) {
        MutexGuard Guard(M, DLF_NAMED_SITE("count:acq"));
      }
    });
    T.join();
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 10u);
  EXPECT_GE(R.Steps, 20u); // acquires + releases + lifecycle
  EXPECT_EQ(R.Thrashes, 0u);
  EXPECT_FALSE(R.DeadlockFound);
}

TEST(ActiveMode, ReentrantLockingWorks) {
  ExecutionResult R = runActive([] {
    Mutex M("reent-active", DLF_SITE());
    M.lock(DLF_SITE());
    M.lock(DLF_SITE());
    EXPECT_TRUE(M.heldByCurrentThread());
    M.unlock();
    EXPECT_TRUE(M.heldByCurrentThread());
    M.unlock();
    EXPECT_FALSE(M.heldByCurrentThread());
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 1u);
}

TEST(ActiveMode, BlockedThreadWaitsForOwner) {
  int Order = 0;
  ExecutionResult R = runActive([&] {
    Mutex M("handoff", DLF_SITE());
    M.lock(DLF_SITE()); // main holds the lock
    Thread T([&] {
      MutexGuard Guard(M, DLF_NAMED_SITE("handoff:child"));
      EXPECT_EQ(Order, 1) << "child entered before main released";
      Order = 2;
    });
    // Give the child plenty of chances to (wrongly) jump the lock.
    for (int I = 0; I != 10; ++I)
      yieldNow();
    Order = 1;
    M.unlock();
    T.join();
    EXPECT_EQ(Order, 2);
  });
  EXPECT_TRUE(R.Completed);
}

TEST(ActiveMode, JoinDisablesUntilTargetFinishes) {
  ExecutionResult R = runActive([] {
    int Progress = 0;
    Thread Slow([&Progress] {
      for (int I = 0; I != 20; ++I)
        yieldNow();
      Progress = 1;
    });
    Slow.join();
    EXPECT_EQ(Progress, 1);
  });
  EXPECT_TRUE(R.Completed);
}

TEST(ActiveMode, ManyWaitersAllGetTheLock) {
  ExecutionResult R = runActive([] {
    Mutex M("waiters", DLF_SITE());
    int Entries = 0;
    std::vector<Thread> Workers;
    for (int T = 0; T != 6; ++T) {
      Workers.emplace_back(Thread([&] {
        MutexGuard Guard(M, DLF_NAMED_SITE("waiters:acq"));
        ++Entries;
      }));
    }
    for (Thread &W : Workers)
      W.join();
    EXPECT_EQ(Entries, 6);
  });
  EXPECT_TRUE(R.Completed);
}

TEST(ActiveMode, NonNestedReleaseOrder) {
  // Locks released in acquisition (not reverse) order: the runtime
  // supports arbitrary release orders (paper §2.1's extension note).
  ExecutionResult R = runActive([] {
    Mutex A("nn-a", DLF_SITE());
    Mutex B("nn-b", DLF_SITE());
    A.lock(DLF_NAMED_SITE("nn:a"));
    B.lock(DLF_NAMED_SITE("nn:b"));
    A.unlock(); // release outer first
    EXPECT_TRUE(B.heldByCurrentThread());
    EXPECT_FALSE(A.heldByCurrentThread());
    B.unlock();
  });
  EXPECT_TRUE(R.Completed);
}

TEST(ActiveMode, ThreadObjectsCarryAbstractions) {
  runActive([] {
    Thread T([] {}, "abs-check", DLF_NAMED_SITE("thr:site"));
    ASSERT_NE(T.record(), nullptr);
    EXPECT_FALSE(T.record()->Abs.Index.Elements.empty());
    EXPECT_EQ(T.record()->Name, "abs-check");
    T.join();
  });
}

TEST(ActiveMode, ScopeGuardFeedsIndexing) {
  // Two locks created under different DLF_SCOPEs get different indexing
  // abstractions even from the same creation statement.
  std::vector<Abstraction> Abs;
  runActive([&] {
    auto MakeLock = [&](const char *Scope) {
      ScopeGuard Guard(Label::intern(Scope));
      Mutex M("scoped", DLF_NAMED_SITE("scope:newLock"));
      Abs.push_back(M.record()->Abs.Index);
    };
    MakeLock("scope:first");
    MakeLock("scope:second");
  });
  ASSERT_EQ(Abs.size(), 2u);
  EXPECT_NE(Abs[0], Abs[1]);
}

TEST(ActiveMode, MoveThreadBeforeJoin) {
  ExecutionResult R = runActive([] {
    std::vector<Thread> Workers;
    int Done = 0;
    // Move-construct into the vector while bodies are live.
    for (int I = 0; I != 3; ++I) {
      Thread T([&Done] {
        yieldNow();
        ++Done;
      });
      Workers.push_back(std::move(T));
    }
    for (Thread &W : Workers)
      W.join();
    EXPECT_EQ(Done, 3);
  });
  EXPECT_TRUE(R.Completed);
}

TEST(ActiveMode, DestructorJoinsUnjoinedThreads) {
  int Done = 0;
  ExecutionResult R = runActive([&] {
    Thread T([&Done] {
      for (int I = 0; I != 5; ++I)
        yieldNow();
      Done = 1;
    });
    // No explicit join: the destructor must perform a managed join.
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(Done, 1);
}

TEST(ActiveMode, WallTimeIsMeasured) {
  ExecutionResult R = runActive([] {
    Mutex M("t", DLF_SITE());
    MutexGuard Guard(M, DLF_SITE());
  });
  EXPECT_GT(R.WallMs, 0.0);
}

TEST(YieldNow, OutsideRuntimeIsANoOpHint) {
  yieldNow(); // must not crash without an installed runtime
  SUCCEED();
}

TEST(RuntimeCurrent, InstalledOnlyDuringRun) {
  EXPECT_EQ(Runtime::current(), nullptr);
  Options Opts;
  Opts.Mode = RunMode::Passthrough;
  Runtime RT(Opts);
  RT.run([] { EXPECT_NE(Runtime::current(), nullptr); });
  EXPECT_EQ(Runtime::current(), nullptr);
}

} // namespace
