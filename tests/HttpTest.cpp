//===- tests/HttpTest.cpp - Mini HTTP machinery -------------------------------===//

#include "substrates/jigsaw/Http.h"
#include "substrates/jigsaw/Jigsaw.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;
using namespace dlf::jigsaw;

TEST(HttpParser, WellFormedGet) {
  auto Request = parseRequest("GET /res/3 HTTP/1.0\r\n"
                              "Host: jigsaw\r\n"
                              "Accept: text/plain\r\n"
                              "\r\n");
  ASSERT_TRUE(Request.has_value());
  EXPECT_EQ(Request->Method, "GET");
  EXPECT_EQ(Request->Path, "/res/3");
  EXPECT_EQ(Request->Version, "HTTP/1.0");
  EXPECT_EQ(Request->Headers.at("host"), "jigsaw");
  EXPECT_EQ(Request->Headers.at("accept"), "text/plain");
  EXPECT_TRUE(Request->isRead());
}

TEST(HttpParser, HeaderNamesAreCaseInsensitive) {
  auto Request = parseRequest("GET / HTTP/1.0\r\nHOST:  padded \r\n\r\n");
  ASSERT_TRUE(Request.has_value());
  EXPECT_EQ(Request->Headers.at("host"), "padded");
}

TEST(HttpParser, BareNewlinesAccepted) {
  auto Request = parseRequest("HEAD /x HTTP/1.1\nhost: a\n\n");
  ASSERT_TRUE(Request.has_value());
  EXPECT_EQ(Request->Method, "HEAD");
  EXPECT_TRUE(Request->isRead());
}

TEST(HttpParser, MalformedInputsRejected) {
  EXPECT_FALSE(parseRequest("").has_value());
  EXPECT_FALSE(parseRequest("GET\r\n\r\n").has_value()) << "no path";
  EXPECT_FALSE(parseRequest("GET /x\r\n\r\n").has_value()) << "no version";
  EXPECT_FALSE(parseRequest("GET x HTTP/1.0\r\n\r\n").has_value())
      << "path must be absolute";
  EXPECT_FALSE(parseRequest("GET /x FTP/1.0\r\n\r\n").has_value())
      << "bad protocol";
  EXPECT_FALSE(parseRequest("GET /x HTTP/1.0 junk\r\n\r\n").has_value())
      << "trailing junk";
  EXPECT_FALSE(parseRequest("GET /x HTTP/1.0\r\nnocolon\r\n\r\n").has_value())
      << "header without colon";
  EXPECT_FALSE(parseRequest("GET /x HTTP/1.0\r\n: novalue\r\n\r\n").has_value())
      << "header without name";
}

TEST(HttpRouter, NumericTailRoutesDirectly) {
  EXPECT_EQ(routeToResource("/res/0", 4), 0u);
  EXPECT_EQ(routeToResource("/res/3", 4), 3u);
  EXPECT_EQ(routeToResource("/res/7", 4), 3u) << "modulo resource count";
}

TEST(HttpRouter, HugeNumericTailRoutesInsteadOfThrowing) {
  // A crafted request whose numeric tail overflows unsigned long used to
  // escape std::out_of_range from std::stoul through the worker thread.
  // Modular accumulation must route it deterministically and in range.
  const char *Huge = "/res/184467440737095516159999184467440737095516159999";
  unsigned First = 0;
  ASSERT_NO_THROW(First = routeToResource(Huge, 7));
  EXPECT_LT(First, 7u);
  EXPECT_EQ(routeToResource(Huge, 7), First) << "deterministic";
  // The exact value of ULLONG_MAX still routes as value mod count.
  EXPECT_EQ(routeToResource("/res/18446744073709551615", 4),
            static_cast<unsigned>(18446744073709551615ull % 4));
  // In-range tails agree with plain integer parsing.
  EXPECT_EQ(routeToResource("/res/123456789", 1000),
            123456789u % 1000u);
}

TEST(HttpRouter, HashRouteIsStableAndInRange) {
  unsigned First = routeToResource("/index.html", 4);
  EXPECT_EQ(routeToResource("/index.html", 4), First);
  EXPECT_LT(First, 4u);
  EXPECT_LT(routeToResource("/other", 4), 4u);
  EXPECT_EQ(routeToResource("/whatever", 0), 0u) << "zero resources";
}

TEST(HttpResponse, SerializeIncludesLengthAndBody) {
  HttpResponse Response;
  Response.Body = "hello";
  Response.Headers["content-type"] = "text/plain";
  std::string Wire = Response.serialize();
  EXPECT_NE(Wire.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(Wire.find("content-length: 5"), std::string::npos);
  EXPECT_NE(Wire.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpResponse, MethodNotAllowed) {
  auto Request = parseRequest("POST /res/1 HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(Request.has_value());
  HttpResponse Response = makeResponse(*Request, "payload");
  EXPECT_EQ(Response.Status, 405);
  EXPECT_TRUE(Response.Body.empty());
  EXPECT_EQ(Response.Headers.at("allow"), "GET, HEAD");
}

TEST(HttpResponse, HeadOmitsBody) {
  auto Request = parseRequest("HEAD /res/1 HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(Request.has_value());
  HttpResponse Response = makeResponse(*Request, "payload");
  EXPECT_EQ(Response.Status, 200);
  EXPECT_TRUE(Response.Body.empty());
}

TEST(HttpServe, EndToEndAgainstStoreAndCache) {
  ResourceStore Store(Label(), /*ResourceCount=*/2);
  ResourceCache Cache(Label(), Store);

  std::string Wire = serveHttp("GET /res/1 HTTP/1.0\r\n\r\n", Store, Cache);
  EXPECT_NE(Wire.find("200 OK"), std::string::npos);
  EXPECT_NE(Wire.find("resource#1"), std::string::npos);
  EXPECT_EQ(Store.loadedCount(), 1u) << "cache miss loads the store";

  Cache.fill(0);
  EXPECT_EQ(Cache.size(), 1u);
  std::string Cached = serveHttp("GET /res/0 HTTP/1.0\r\n\r\n", Store, Cache);
  EXPECT_NE(Cached.find("200 OK"), std::string::npos);
  EXPECT_EQ(Store.loadedCount(), 1u) << "cache hit must not load the store";

  Store.invalidate(Cache);
  EXPECT_EQ(Cache.size(), 0u);

  std::string Bad = serveHttp("BOGUS\r\n\r\n", Store, Cache);
  EXPECT_NE(Bad.find("400 Bad Request"), std::string::npos);
}

} // namespace
