//===- tests/ParallelClosureTest.cpp - serial/parallel equivalence -----------===//
//
// The determinism contract of the parallel closure engine: for any relation
// and any AnalysisJobs value, runIGoodlock returns byte-identical cycles
// (order, components, multiplicities) and identical determinism-relevant
// stats. Exercised on randomized relations, including MaxChains/MaxCycles
// truncation, >64-distinct-lock held sets, and the happens-before filter
// with randomized vector clocks. MinChainsPerShard is forced to 1 so even
// tiny levels actually shard.
//
//===----------------------------------------------------------------------===//

#include "igoodlock/IGoodlock.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace {

using namespace dlf;

/// Adds one dependency entry; an optional clock stamps the acquire.
void addDep(LockDependencyLog &Log, uint64_t Thread,
            const std::vector<uint64_t> &Held, uint64_t Acquired,
            const VectorClock &Clock = {}) {
  ThreadRecord T;
  T.Id = ThreadId(Thread);
  T.Name = "t" + std::to_string(Thread);
  T.Abs.Index.Elements = {static_cast<uint32_t>(Thread), 1};
  T.Clock = Clock;
  Log.onThreadCreated(T);

  auto EnsureLock = [&](uint64_t L) {
    LockRecord Rec;
    Rec.Id = LockId(L);
    Rec.Name = "l" + std::to_string(L);
    Rec.Abs.Index.Elements = {static_cast<uint32_t>(L), 1};
    Log.onLockCreated(Rec);
    return Rec;
  };

  std::vector<LockStackEntry> Stack;
  for (uint64_t H : Held) {
    EnsureLock(H);
    Stack.push_back({LockId(H), Label::intern("pc:" + std::to_string(H))});
  }
  LockRecord Acq = EnsureLock(Acquired);
  Log.onAcquireExecuted(T, Acq, Stack,
                        Label::intern("pc:" + std::to_string(Acquired)),
                        LockMode::Exclusive);
}

/// A random relation: \p Entries acquires over \p Threads threads and
/// \p Locks locks, each holding up to \p HeldMax random locks. With
/// \p WithClocks, every entry gets a random (frequently concurrent,
/// sometimes ordered) vector clock so the HB filter has real work.
LockDependencyLog randomRelation(uint32_t Seed, unsigned Threads,
                                 unsigned Locks, unsigned Entries,
                                 unsigned HeldMax, bool WithClocks = false) {
  std::mt19937 Rng(Seed);
  auto Rand = [&](unsigned N) { return Rng() % N; };
  LockDependencyLog Log;
  for (unsigned I = 0; I != Entries; ++I) {
    uint64_t Thread = 1 + Rand(Threads);
    unsigned HeldCount = 1 + Rand(HeldMax);
    std::vector<uint64_t> Held;
    for (unsigned H = 0; H != HeldCount; ++H) {
      uint64_t L = 1 + Rand(Locks);
      bool Dup = false;
      for (uint64_t Existing : Held)
        Dup |= Existing == L;
      if (!Dup)
        Held.push_back(L);
    }
    uint64_t Acq = 1 + Rand(Locks);
    VectorClock Clock;
    if (WithClocks) {
      Clock.resize(Threads, 0);
      for (unsigned C = 0; C != Threads; ++C)
        Clock[C] = Rand(4);
    }
    addDep(Log, Thread, Held, Acq, Clock);
  }
  return Log;
}

/// A fingerprint of everything runIGoodlock promises is job-count
/// independent: per-cycle keys, names, contexts, multiplicities, plus the
/// deterministic stats fields (JobsUsed/ElapsedMicros excluded by design).
std::string fingerprint(const std::vector<AbstractCycle> &Cycles,
                        const IGoodlockStats &Stats) {
  std::string F;
  for (const AbstractCycle &Cycle : Cycles) {
    F += Cycle.key(AbstractionKind::ExecutionIndex, /*UseContext=*/true);
    F += "#x" + std::to_string(Cycle.Multiplicity);
    for (const CycleComponent &Comp : Cycle.Components) {
      F += "|" + Comp.ThreadName + "/" + Comp.LockName;
      for (Label Site : Comp.Context)
        F += "," + std::string(Site.text());
    }
    F += "\n";
  }
  F += "entries=" + std::to_string(Stats.Entries);
  F += " chains=" + std::to_string(Stats.ChainsExplored);
  F += " iters=" + std::to_string(Stats.Iterations);
  F += " trunc=" + std::to_string(Stats.Truncated);
  F += " hb=" + std::to_string(Stats.FilteredByHb);
  F += " cdrop=" + std::to_string(Stats.ChainsDropped);
  F += " ydrop=" + std::to_string(Stats.CyclesDropped);
  return F;
}

/// Runs the relation serially and at jobs 2, 4, and 0 (hardware) with
/// sharding forced on, expecting identical fingerprints throughout.
void expectJobCountInvariant(const LockDependencyLog &Log,
                             IGoodlockOptions Opts) {
  Opts.MinChainsPerShard = 1; // shard even two-chain levels
  Opts.AnalysisJobs = 1;
  IGoodlockStats SerialStats;
  auto SerialCycles = runIGoodlock(Log, Opts, &SerialStats);
  const std::string Serial = fingerprint(SerialCycles, SerialStats);
  for (unsigned Jobs : {2u, 4u, 0u}) {
    Opts.AnalysisJobs = Jobs;
    IGoodlockStats Stats;
    auto Cycles = runIGoodlock(Log, Opts, &Stats);
    EXPECT_EQ(fingerprint(Cycles, Stats), Serial)
        << "jobs=" << Jobs << " diverged from serial";
  }
}

TEST(ParallelClosure, RandomRelationsMatchSerial) {
  for (uint32_t Seed = 1; Seed <= 8; ++Seed) {
    LockDependencyLog Log = randomRelation(Seed, /*Threads=*/6, /*Locks=*/8,
                                           /*Entries=*/60, /*HeldMax=*/3);
    expectJobCountInvariant(Log, {});
  }
}

TEST(ParallelClosure, DenseRelationsWithRealFanout) {
  // Few locks, many threads: levels with thousands of chains, so every job
  // count genuinely multi-shards.
  for (uint32_t Seed = 11; Seed <= 13; ++Seed) {
    LockDependencyLog Log = randomRelation(Seed, /*Threads=*/8, /*Locks=*/5,
                                           /*Entries=*/80, /*HeldMax=*/2);
    IGoodlockOptions Opts;
    Opts.MaxCycleLength = 5;
    expectJobCountInvariant(Log, Opts);
  }
}

TEST(ParallelClosure, MaxChainsTruncationMatchesSerial) {
  // The abort-the-level cut must land on the same chain for every job
  // count: sweep caps from tight to loose so the cut crosses shard
  // boundaries in some configuration.
  LockDependencyLog Log = randomRelation(21, /*Threads=*/8, /*Locks=*/5,
                                         /*Entries=*/80, /*HeldMax=*/2);
  for (size_t MaxChains : {1u, 3u, 7u, 20u, 100u, 1000u}) {
    IGoodlockOptions Opts;
    Opts.MaxChains = MaxChains;
    expectJobCountInvariant(Log, Opts);
  }
}

TEST(ParallelClosure, MaxCyclesTruncationMatchesSerial) {
  LockDependencyLog Log = randomRelation(31, /*Threads=*/10, /*Locks=*/6,
                                         /*Entries=*/90, /*HeldMax=*/2);
  for (size_t MaxCycles : {0u, 1u, 2u, 5u, 50u}) {
    IGoodlockOptions Opts;
    Opts.MaxCycles = MaxCycles;
    expectJobCountInvariant(Log, Opts);
  }
}

TEST(ParallelClosure, WideHeldSetsMatchSerial) {
  // >64 distinct locks: the disjointness fallback and cycle-close binary
  // search run under sharding too.
  for (uint32_t Seed = 41; Seed <= 44; ++Seed) {
    LockDependencyLog Log = randomRelation(Seed, /*Threads=*/6, /*Locks=*/100,
                                           /*Entries=*/70, /*HeldMax=*/6);
    expectJobCountInvariant(Log, {});
  }
}

TEST(ParallelClosure, HappensBeforeFilterMatchesSerial) {
  // Random vector clocks: FilteredByHb and the surviving cycle list must
  // be identical for every job count (the HbCache is per-worker, so this
  // pins down that memoization never changes results).
  for (uint32_t Seed = 51; Seed <= 54; ++Seed) {
    LockDependencyLog Log =
        randomRelation(Seed, /*Threads=*/6, /*Locks=*/8, /*Entries=*/60,
                       /*HeldMax=*/3, /*WithClocks=*/true);
    IGoodlockOptions Opts;
    Opts.FilterByHappensBefore = true;
    expectJobCountInvariant(Log, Opts);
  }
}

TEST(ParallelClosure, EverythingAtOnce) {
  // All stressors combined: wide locks, clocks + HB filter, tight caps.
  for (uint32_t Seed = 61; Seed <= 63; ++Seed) {
    LockDependencyLog Log =
        randomRelation(Seed, /*Threads=*/8, /*Locks=*/80, /*Entries=*/80,
                       /*HeldMax=*/5, /*WithClocks=*/true);
    IGoodlockOptions Opts;
    Opts.FilterByHappensBefore = true;
    Opts.MaxChains = 50;
    Opts.MaxCycles = 3;
    expectJobCountInvariant(Log, Opts);
  }
}

} // namespace
