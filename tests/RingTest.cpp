//===- tests/RingTest.cpp - Shared-memory event ring unit tests -----------===//
//
// Edge cases of the ring transport (src/ring): wrap-around, overflow drop
// accounting, torn/corrupt record detection through the seqlock stamps, an
// observer attaching mid-run, a writer dying with a half-written slot
// (driven by the deterministic fault plane), cross-shard merge order, and
// the observer-side Assembler's model reconstruction.
//
//===----------------------------------------------------------------------===//

#include "analysis/Trace.h"
#include "faultinject/FaultInject.h"
#include "ring/Assemble.h"
#include "ring/Ring.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace dlf;
using namespace dlf::ring;

namespace {

std::string tmpRing(const char *Name) {
  std::string Path = std::string(::testing::TempDir()) + "/" + Name;
  std::remove(Path.c_str());
  return Path;
}

/// A second, independent mapping of a ring file, for tampering with slot
/// stamps the way a corrupted mapping (or a dying writer) would.
struct RawRing {
  void *Mem = nullptr;
  size_t Bytes = 0;
  RingGeometry Geom;

  explicit RawRing(const std::string &Path) {
    int Fd = ::open(Path.c_str(), O_RDWR);
    if (Fd < 0)
      return;
    struct stat St;
    if (::fstat(Fd, &St) != 0) {
      ::close(Fd);
      return;
    }
    Bytes = static_cast<size_t>(St.st_size);
    Mem = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
    ::close(Fd);
    if (Mem == MAP_FAILED) {
      Mem = nullptr;
      return;
    }
    auto *Hdr = static_cast<RingHeader *>(Mem);
    Geom.Shards = Hdr->ShardCount;
    Geom.Slots = Hdr->SlotsPerShard;
  }
  ~RawRing() {
    if (Mem)
      ::munmap(Mem, Bytes);
  }

  Slot &slot(uint32_t Shard, uint32_t Index) {
    auto *Base = reinterpret_cast<Slot *>(static_cast<char *>(Mem) +
                                          Geom.slotsOff());
    return Base[size_t(Shard) * Geom.Slots + Index];
  }
};

void expectAscending(const std::vector<Record> &Out) {
  for (size_t I = 1; I < Out.size(); ++I)
    EXPECT_LT(Out[I - 1].Seq, Out[I].Seq) << "merge order broken at " << I;
}

TEST(Ring, WrapAroundKeepsSequenceOrder) {
  const std::string Path = tmpRing("ring_wrap.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 2, 8, &Err));
  ASSERT_TRUE(W) << Err;
  std::unique_ptr<RingReader> R(RingReader::attach(Path, &Err));
  ASSERT_TRUE(R) << Err;

  ShardHandle H = W->claimShard();
  std::vector<Record> Out;
  // 6 records per round through an 8-slot shard: five full laps.
  for (int Round = 0; Round != 5; ++Round) {
    for (int I = 0; I != 6; ++I)
      ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x1000 + I, 0));
    R->drainPass(Out);
  }
  W->markDone();
  R->finishDrain(Out);

  EXPECT_EQ(Out.size(), 30u);
  expectAscending(Out);
  EXPECT_EQ(R->stats().Torn, 0u);
  EXPECT_EQ(R->stats().Corrupt, 0u);
  EXPECT_EQ(R->dropsTotal(), 0u);
}

TEST(Ring, OverflowDropsInsteadOfBlocking) {
  const std::string Path = tmpRing("ring_overflow.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 2, 8, &Err));
  ASSERT_TRUE(W) << Err;

  ShardHandle H = W->claimShard();
  for (int I = 0; I != 8; ++I)
    ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x10, 0));
  // Ring full, nobody draining: the writer must not block.
  uint64_t Occupancy = 0;
  for (int I = 0; I != 3; ++I)
    EXPECT_FALSE(W->write(H, RecordKind::Acquire, 1, 0x10, 0, &Occupancy));
  EXPECT_EQ(Occupancy, 8u);
  EXPECT_EQ(W->dropsTotal(), 3u);

  // A drain frees the shard: writes flow again (CachedTail refresh path).
  std::unique_ptr<RingReader> R(RingReader::attach(Path, &Err));
  ASSERT_TRUE(R) << Err;
  std::vector<Record> Out;
  R->drainPass(Out);
  EXPECT_EQ(Out.size(), 8u);
  EXPECT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x10, 0));
  EXPECT_EQ(W->dropsTotal(), 3u);
  EXPECT_EQ(R->dropsTotal(), 3u);
}

TEST(Ring, OversizedTidIsCountedDrop) {
  const std::string Path = tmpRing("ring_tid.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 2, 8, &Err));
  ASSERT_TRUE(W) << Err;
  ShardHandle H = W->claimShard();
  EXPECT_FALSE(W->write(H, RecordKind::Acquire, 1u << 17, 0x10, 0));
  EXPECT_EQ(W->dropsTotal(), 1u);
}

TEST(Ring, TornRecordDetectedBySeqlockReRead) {
  const std::string Path = tmpRing("ring_torn.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 2, 8, &Err));
  ASSERT_TRUE(W) << Err;
  ShardHandle H = W->claimShard();
  ASSERT_EQ(H.Index, 1u); // first exclusive claim: shard 1
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x10 + I, 0));

  // Regress the middle slot's stamp to in-progress: a stable phase-1 stamp
  // under a published Head is exactly what a record torn mid-write looks
  // like, and the re-read must refuse the payload.
  RawRing Raw(Path);
  ASSERT_TRUE(Raw.Mem);
  Raw.slot(1, 1).Stamp.store(stampInProgress(1));

  std::unique_ptr<RingReader> R(RingReader::attach(Path, &Err));
  ASSERT_TRUE(R) << Err;
  W->markDone();
  std::vector<Record> Out;
  R->finishDrain(Out);
  EXPECT_EQ(R->stats().Torn, 1u);
  EXPECT_EQ(Out.size(), 2u);
  expectAscending(Out);
}

TEST(Ring, CorruptStampPayloadMismatchDetected) {
  const std::string Path = tmpRing("ring_corrupt.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 2, 8, &Err));
  ASSERT_TRUE(W) << Err;
  ShardHandle H = W->claimShard();
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x10 + I, 0));

  // A complete stamp whose sequence disagrees with the payload's: the
  // mapping lies, and the record must be rejected as corrupt (not torn).
  RawRing Raw(Path);
  ASSERT_TRUE(Raw.Mem);
  Raw.slot(1, 1).Stamp.store(stampComplete(1 + 7));

  std::unique_ptr<RingReader> R(RingReader::attach(Path, &Err));
  ASSERT_TRUE(R) << Err;
  W->markDone();
  std::vector<Record> Out;
  R->finishDrain(Out);
  EXPECT_EQ(R->stats().Corrupt, 1u);
  EXPECT_EQ(R->stats().Torn, 0u);
  EXPECT_EQ(Out.size(), 2u);
}

TEST(Ring, ObserverAttachesMidRun) {
  const std::string Path = tmpRing("ring_midrun.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 2, 64, &Err));
  ASSERT_TRUE(W) << Err;
  ShardHandle H = W->claimShard();
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x10, 0));

  // First observer consumes the prefix...
  {
    std::unique_ptr<RingReader> R1(RingReader::attach(Path, &Err));
    ASSERT_TRUE(R1) << Err;
    std::vector<Record> Out;
    R1->drainPass(Out);
    EXPECT_EQ(Out.size(), 5u);
  }

  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x20, 0));
  W->markDone();

  // ...and a second observer, attaching mid-run, resumes from the recorded
  // Tail instead of re-reading (or worse, re-believing) consumed slots.
  std::unique_ptr<RingReader> R2(RingReader::attach(Path, &Err));
  ASSERT_TRUE(R2) << Err;
  std::vector<Record> Out;
  R2->finishDrain(Out);
  EXPECT_EQ(Out.size(), 3u);
  for (const Record &R : Out)
    EXPECT_EQ(R.Addr, 0x20u);
}

TEST(Ring, WriterCrashLeavesHalfWrittenSlot) {
  const std::string Path = tmpRing("ring_crash.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 2, 8, &Err));
  ASSERT_TRUE(W) << Err;
  ShardHandle H = W->claimShard();

  // The deterministic crash plane: the third write dies (from the ring's
  // point of view) after claiming its slot and sequence number but before
  // the payload.
  faultinject::FaultPlan P;
  std::string PlanErr;
  ASSERT_TRUE(P.parse("ring.write.halfslot@3", &PlanErr)) << PlanErr;
  faultinject::setPlan(std::move(P));
  ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x10, 0));
  ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x11, 0));
  ASSERT_TRUE(W->write(H, RecordKind::Acquire, 1, 0x12, 0)); // half-written
  faultinject::setPlan(faultinject::FaultPlan());

  std::unique_ptr<RingReader> R(RingReader::attach(Path, &Err));
  ASSERT_TRUE(R) << Err;
  std::vector<Record> Out;
  // While the slot is merely in-flight the frontier holds: a live writer
  // could still complete it. Nothing above sequence 1 may be released.
  R->drainPass(Out);
  EXPECT_EQ(Out.size(), 2u);

  // The writer is dead (no markDone): the final drain classifies the
  // abandoned slot as half-written and releases everything else.
  R->finishDrain(Out);
  EXPECT_EQ(Out.size(), 2u);
  EXPECT_EQ(R->stats().HalfWritten, 1u);
  EXPECT_EQ(R->stats().Torn, 0u);
  EXPECT_EQ(R->stats().Corrupt, 0u);
  expectAscending(Out);
}

TEST(Ring, TwoWritersMergeInSequenceOrder) {
  const std::string Path = tmpRing("ring_two_writers.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 4, 2048, &Err));
  ASSERT_TRUE(W) << Err;

  const int PerThread = 800;
  auto Writer = [&](uint32_t Tid) {
    ShardHandle H = W->claimShard();
    for (int I = 0; I != PerThread; ++I)
      ASSERT_TRUE(W->write(H, RecordKind::Acquire, Tid, 0x10, 0));
    W->releaseShard(H);
  };
  std::thread T1(Writer, 1), T2(Writer, 2);
  T1.join();
  T2.join();
  W->markDone();

  std::unique_ptr<RingReader> R(RingReader::attach(Path, &Err));
  ASSERT_TRUE(R) << Err;
  std::vector<Record> Out;
  R->finishDrain(Out);
  ASSERT_EQ(Out.size(), size_t(2 * PerThread));
  expectAscending(Out);
  // The global counter hands out a dense range: merged output is exactly
  // 0..N-1 with no gaps.
  for (size_t I = 0; I != Out.size(); ++I)
    EXPECT_EQ(Out[I].Seq, I);
}

TEST(Ring, SiteInterningRoundTrips) {
  const std::string Path = tmpRing("ring_sites.ring");
  std::string Err;
  std::unique_ptr<RingWriter> W(RingWriter::create(Path, 2, 8, &Err));
  ASSERT_TRUE(W) << Err;
  uint32_t A = W->internSite("alpha+0x10");
  uint32_t B = W->internSite("beta+0x20");
  EXPECT_NE(A, 0u);
  EXPECT_NE(B, 0u);
  EXPECT_NE(A, B);
  EXPECT_EQ(W->internSite("alpha+0x10"), A); // idempotent

  std::unique_ptr<RingReader> R(RingReader::attach(Path, &Err));
  ASSERT_TRUE(R) << Err;
  EXPECT_EQ(R->siteName(A), "alpha+0x10");
  EXPECT_EQ(R->siteName(B), "beta+0x20");
  EXPECT_EQ(R->siteName(0), "");
  EXPECT_EQ(R->siteName(9999), "");
}

//===----------------------------------------------------------------------===//
// Assembler: observer-side reconstruction of the in-process model.
//===----------------------------------------------------------------------===//

struct AssemblerFixture {
  std::unique_ptr<RingWriter> W;
  std::unique_ptr<RingReader> R;
  uint32_t Main = 0, SiteA = 0, SiteB = 0, Create = 0;

  explicit AssemblerFixture(const char *Name) {
    std::string Err;
    W.reset(RingWriter::create(tmpRing(Name), 2, 64, &Err));
    if (!W)
      return;
    Main = W->internSite("main");
    SiteA = W->internSite("workerA+0x10");
    SiteB = W->internSite("workerB+0x20");
    Create = W->internSite("main+0x30");
    R.reset(RingReader::attach(
        std::string(::testing::TempDir()) + "/" + Name, &Err));
  }

  static Record rec(RecordKind K, uint16_t Tid, uint64_t Addr,
                    uint32_t Site) {
    Record Rc;
    Rc.Kind = static_cast<uint16_t>(K);
    Rc.Tid = Tid;
    Rc.Addr = Addr;
    Rc.Site = Site;
    return Rc;
  }
};

TEST(Assembler, CollapsesRecursionAndAssignsDenseIds) {
  AssemblerFixture F("ring_asm_rec.ring");
  ASSERT_TRUE(F.R);
  Assembler Asm(*F.R);
  std::vector<Record> In = {
      F.rec(RecordKind::ThreadSelf, 1, 0, F.Main),
      F.rec(RecordKind::Acquire, 1, 0x1000, F.SiteA),
      F.rec(RecordKind::Acquire, 1, 0x1000, F.SiteA), // recursive
      F.rec(RecordKind::Release, 1, 0x1000, 0),       // inner
      F.rec(RecordKind::Release, 1, 0x1000, 0),       // outer
      F.rec(RecordKind::Release, 1, 0x2000, 0),       // never-seen lock
  };
  std::vector<analysis::TraceEvent> Out;
  Asm.feed(In, Out);

  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0].K, analysis::TraceEvent::Kind::ThreadNew);
  EXPECT_EQ(Out[0].A, 1u);
  EXPECT_EQ(Out[0].Text, "main#1");
  EXPECT_EQ(Out[1].K, analysis::TraceEvent::Kind::LockNew);
  EXPECT_EQ(Out[1].A, 1u); // dense id, not the address
  EXPECT_EQ(Out[1].Text, "workerA+0x10#1");
  EXPECT_EQ(Out[2].K, analysis::TraceEvent::Kind::Acquire);
  EXPECT_EQ(Out[2].B, 1u);
  EXPECT_EQ(Out[2].Text, "workerA+0x10");
  EXPECT_EQ(Out[3].K, analysis::TraceEvent::Kind::Release);
}

TEST(Assembler, ResolvesRwlockUnlockSides) {
  AssemblerFixture F("ring_asm_rw.ring");
  ASSERT_TRUE(F.R);
  Assembler Asm(*F.R);
  std::vector<Record> In = {
      F.rec(RecordKind::ThreadSelf, 1, 0, F.Main),
      F.rec(RecordKind::SharedAcquire, 1, 0x3000, F.SiteA),
      F.rec(RecordKind::RwUnlock, 1, 0x3000, 0), // read side held: U
      F.rec(RecordKind::Acquire, 1, 0x3000, F.SiteB),
      F.rec(RecordKind::RwUnlock, 1, 0x3000, 0), // write side held: R
  };
  std::vector<analysis::TraceEvent> Out;
  Asm.feed(In, Out);

  ASSERT_EQ(Out.size(), 6u);
  EXPECT_EQ(Out[2].K, analysis::TraceEvent::Kind::SharedAcquire);
  EXPECT_EQ(Out[3].K, analysis::TraceEvent::Kind::SharedRelease);
  EXPECT_EQ(Out[4].K, analysis::TraceEvent::Kind::Acquire);
  EXPECT_EQ(Out[5].K, analysis::TraceEvent::Kind::Release);
}

TEST(Assembler, BumpsRepeatedSitesDeterministically) {
  AssemblerFixture F("ring_asm_bump.ring");
  ASSERT_TRUE(F.R);
  Assembler Asm(*F.R);
  std::vector<Record> In = {
      F.rec(RecordKind::ThreadSelf, 1, 0, F.Main),
      F.rec(RecordKind::ThreadFork, 1, 2, F.Create),
      F.rec(RecordKind::ThreadFork, 1, 3, F.Create),
  };
  std::vector<analysis::TraceEvent> Out;
  Asm.feed(In, Out);

  ASSERT_EQ(Out.size(), 5u);
  EXPECT_EQ(Out[1].K, analysis::TraceEvent::Kind::ThreadNew);
  EXPECT_EQ(Out[1].A, 2u);
  EXPECT_EQ(Out[1].Text, "main+0x30#1");
  EXPECT_EQ(Out[2].K, analysis::TraceEvent::Kind::Fork);
  EXPECT_EQ(Out[2].A, 1u);
  EXPECT_EQ(Out[2].B, 2u);
  EXPECT_EQ(Out[3].Text, "main+0x30#2"); // second child at the same site
}

TEST(Assembler, TracksCondvarsByDenseId) {
  AssemblerFixture F("ring_asm_cond.ring");
  ASSERT_TRUE(F.R);
  Assembler Asm(*F.R);
  std::vector<Record> In = {
      F.rec(RecordKind::ThreadSelf, 1, 0, F.Main),
      F.rec(RecordKind::CondNotify, 1, 0xc0, 0),
      F.rec(RecordKind::CondWake, 1, 0xc0, 0),
      F.rec(RecordKind::CondNotify, 1, 0xd0, 0),
  };
  std::vector<analysis::TraceEvent> Out;
  Asm.feed(In, Out);

  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[1].K, analysis::TraceEvent::Kind::CondNotify);
  EXPECT_EQ(Out[1].B, 1u);
  EXPECT_EQ(Out[2].K, analysis::TraceEvent::Kind::CondWake);
  EXPECT_EQ(Out[2].B, 1u); // same condvar, same dense id
  EXPECT_EQ(Out[3].B, 2u); // different condvar
}

} // namespace
