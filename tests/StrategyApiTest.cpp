//===- tests/StrategyApiTest.cpp - Custom scheduling strategies ----------------===//
//
// The SchedulerStrategy interface is a public extension point (the paper's
// active-testing framework hosts race and atomicity checkers the same
// way). These tests implement custom strategies — deterministic FIFO
// scheduling and an always-pause adversary — and check the scheduler's
// contract holds for them.
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Strategy.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;

/// Always picks the lowest thread id: a deterministic FIFO-ish policy.
class FifoStrategy : public SchedulerStrategy {
public:
  const char *name() const override { return "fifo"; }
  size_t pickIndex(const std::vector<const ThreadRecord *> &Candidates,
                   Rng &R) override {
    (void)R;
    size_t Best = 0;
    for (size_t I = 1; I != Candidates.size(); ++I)
      if (Candidates[I]->Id < Candidates[Best]->Id)
        Best = I;
    ++Picks;
    return Best;
  }
  uint64_t Picks = 0;
};

/// Pauses *every* acquire once: the worst adversary thrash handling must
/// survive.
class AlwaysPauseStrategy : public SchedulerStrategy {
public:
  const char *name() const override { return "always-pause"; }
  bool shouldPause(const ThreadRecord &T, const LockRecord &L,
                   const std::vector<LockStackEntry> &Tentative) override {
    (void)L;
    (void)Tentative;
    ++PauseQueries;
    return true; // thrash handling / ForceExecute must still make progress
  }
  uint64_t PauseQueries = 0;
};

void smallProgram(int *Sum) {
  Mutex M("api-m", DLF_SITE());
  std::vector<Thread> Workers;
  for (int T = 0; T != 3; ++T) {
    Workers.emplace_back(Thread([&M, Sum] {
      for (int I = 0; I != 4; ++I) {
        MutexGuard Guard(M, DLF_NAMED_SITE("api:acq"));
        ++*Sum;
      }
    }));
  }
  for (Thread &W : Workers)
    W.join();
}

TEST(StrategyApi, CustomFifoStrategyRunsPrograms) {
  FifoStrategy Fifo;
  Options Opts;
  Opts.Mode = RunMode::Active;
  Runtime RT(Opts, &Fifo);
  int Sum = 0;
  ExecutionResult R = RT.run([&] { smallProgram(&Sum); });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(Sum, 12);
  EXPECT_GT(Fifo.Picks, 0u);
}

TEST(StrategyApi, FifoIsFullyDeterministicAcrossSeeds) {
  // A strategy that ignores the Rng must produce identical step counts for
  // any seed.
  auto StepsFor = [&](uint64_t Seed) {
    FifoStrategy Fifo;
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = Seed;
    Runtime RT(Opts, &Fifo);
    int Sum = 0;
    return RT.run([&] { smallProgram(&Sum); }).Steps;
  };
  EXPECT_EQ(StepsFor(1), StepsFor(999));
}

TEST(StrategyApi, AlwaysPauseAdversaryStillTerminates) {
  AlwaysPauseStrategy Adversary;
  Options Opts;
  Opts.Mode = RunMode::Active;
  Runtime RT(Opts, &Adversary);
  int Sum = 0;
  ExecutionResult R = RT.run([&] { smallProgram(&Sum); });
  EXPECT_TRUE(R.Completed) << "thrash handling must defeat the adversary";
  EXPECT_EQ(Sum, 12);
  EXPECT_GT(R.Thrashes, 0u);
  EXPECT_GT(Adversary.PauseQueries, 0u);
}

TEST(StrategyApi, PauseQueriesOnlyForAcquires) {
  // The strategy contract: shouldPause is consulted exactly once per
  // committed acquire attempt of a non-reentrant lock.
  AlwaysPauseStrategy Adversary;
  Options Opts;
  Opts.Mode = RunMode::Active;
  Runtime RT(Opts, &Adversary);
  ExecutionResult R = RT.run([] {
    Mutex M("api-q", DLF_SITE());
    M.lock(DLF_NAMED_SITE("api:one"));
    M.lock(DLF_NAMED_SITE("api:reentrant")); // invisible
    M.unlock();
    M.unlock();
  });
  EXPECT_TRUE(R.Completed);
  // One real acquire; it pauses once, then the thrash-released retry
  // executes without consulting the strategy again (ForceExecute).
  EXPECT_EQ(Adversary.PauseQueries, 1u);
  EXPECT_EQ(R.AcquireEvents, 1u);
}

} // namespace
