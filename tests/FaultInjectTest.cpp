//===- tests/FaultInjectTest.cpp - Deterministic fault injection ------------===//
//
// The fault plane under test is itself test infrastructure for the chaos
// campaigns, so its contracts are pinned down tightly here: the plan
// grammar (accept and reject), the determinism guarantees (ordinal,
// probability, and rep triggers as pure functions of the plan seed and the
// work identity), the CRC32 the journal integrity tags are built on, and
// the end-to-end behavior of an injected fault at a real site.
//
//===----------------------------------------------------------------------===//

#include "faultinject/FaultInject.h"

#include "campaign/Journal.h"
#include "campaign/Json.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>

#include <unistd.h>

namespace {

using namespace dlf;
using namespace dlf::faultinject;

// -- Grammar -----------------------------------------------------------------

TEST(FaultPlanParse, AcceptsTheFullGrammarAndRoundTripsThroughDescribe) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(P.parse("journal.fsync:enospc@3; child.crash@rep=7,"
                      "child.hang@rep=12 ;sidecar.truncate@2;"
                      "worker.spawn:eagain@1;runner.kill@4;"
                      "child.crash:segv@p=0.25;seed=42",
                      &Error))
      << Error;
  EXPECT_EQ(P.specs().size(), 7u);
  EXPECT_EQ(P.seed(), 42u);
  EXPECT_EQ(P.describe(),
            "journal.fsync:enospc@3;child.crash@rep=7;child.hang@rep=12;"
            "sidecar.truncate@2;worker.spawn:eagain@1;runner.kill@4;"
            "child.crash:segv@p=0.25;seed=42");

  // describe() is re-parseable: the round trip is lossless.
  FaultPlan Q;
  ASSERT_TRUE(Q.parse(P.describe(), &Error)) << Error;
  EXPECT_EQ(Q.describe(), P.describe());
}

TEST(FaultPlanParse, RejectsMalformedClausesAndLeavesThePlanUnchanged) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(P.parse("journal.torn@1", &Error)) << Error;

  // Unknown site; the message names the known ones.
  EXPECT_FALSE(P.parse("journal.flush@1", &Error));
  EXPECT_NE(Error.find("unknown site"), std::string::npos) << Error;
  EXPECT_NE(Error.find("journal.fsync"), std::string::npos) << Error;

  // Action the site does not take.
  EXPECT_FALSE(P.parse("journal.fsync:eacces@1", &Error));
  EXPECT_NE(Error.find("does not take action"), std::string::npos) << Error;

  // rep= only applies to child-side sites.
  EXPECT_FALSE(P.parse("journal.write@rep=3", &Error));
  EXPECT_NE(Error.find("rep="), std::string::npos) << Error;

  // Ordinals are 1-based; probabilities live in [0, 1].
  EXPECT_FALSE(P.parse("journal.write@0", &Error));
  EXPECT_FALSE(P.parse("child.crash@p=1.5", &Error));
  EXPECT_FALSE(P.parse("child.crash@p=nope", &Error));
  EXPECT_FALSE(P.parse("child.crash", &Error));
  EXPECT_FALSE(P.parse("seed=-1", &Error));

  // Every rejected parse left the original single-clause plan intact.
  EXPECT_EQ(P.specs().size(), 1u);
  EXPECT_EQ(P.describe(), "journal.torn@1");
}

// -- Trigger semantics -------------------------------------------------------

TEST(FaultPlanTriggers, OrdinalFiresOnExactlyTheNthHit) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(P.parse("journal.write:eio@3", &Error)) << Error;
  EXPECT_EQ(P.hit("journal.write"), nullptr);
  EXPECT_EQ(P.hit("journal.write"), nullptr);
  const FaultSpec *S = P.hit("journal.write");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Action, "eio");
  EXPECT_EQ(P.hit("journal.write"), nullptr); // one-shot: the 4th is clean
  // Other sites run on their own counters.
  EXPECT_EQ(P.hit("journal.fsync"), nullptr);
}

TEST(FaultPlanTriggers, AlwaysFiresOnEveryHit) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(P.parse("journal.fsync@always", &Error)) << Error;
  for (int I = 0; I != 5; ++I)
    EXPECT_NE(P.hit("journal.fsync"), nullptr);
}

TEST(FaultPlanTriggers, ProbabilityIsAPureFunctionOfSeedAndIdentity) {
  // Two plans with the same seed make identical decisions for the same
  // (cycle, rep) identities — across separate plan instances, which is what
  // makes chaos runs replayable and resume-stable.
  auto Decisions = [](uint64_t Seed) {
    FaultPlan P;
    std::string Error;
    EXPECT_TRUE(P.parse("child.crash@p=0.5", &Error)) << Error;
    P.setSeed(Seed);
    std::string Out;
    for (uint64_t Cycle = 0; Cycle != 4; ++Cycle)
      for (uint64_t Rep = 0; Rep != 16; ++Rep)
        Out += P.childFaults(Cycle, Rep, 0).CrashAction.empty() ? '0' : '1';
    return Out;
  };
  std::string A = Decisions(7), B = Decisions(7), C = Decisions(8);
  EXPECT_EQ(A, B);
  EXPECT_NE(C, A); // a different seed picks a different subset
  // p=0.5 over 64 trials: both outcomes occur.
  EXPECT_NE(A.find('0'), std::string::npos);
  EXPECT_NE(A.find('1'), std::string::npos);
}

TEST(FaultPlanTriggers, RepTriggerGatesCrashesToTheFirstAttemptOnly) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(
      P.parse("child.crash:segv@rep=5;sidecar.truncate@rep=5", &Error))
      << Error;
  // Wrong rep: nothing fires.
  EXPECT_FALSE(P.childFaults(0, 4, 0).any());
  // Attempt 0 of rep 5: crash and sidecar fault both fire.
  ChildFaults First = P.childFaults(0, 5, 0);
  EXPECT_EQ(First.CrashAction, "segv");
  EXPECT_TRUE(First.SidecarTruncate);
  // The supervised restart (attempt 1) must be allowed to complete the rep,
  // but the sidecar fault sticks to the rep across attempts.
  ChildFaults Retry = P.childFaults(0, 5, 1);
  EXPECT_TRUE(Retry.CrashAction.empty());
  EXPECT_TRUE(Retry.SidecarTruncate);
}

TEST(FaultPlanTriggers, ChildSitesShareOneLaunchCounter) {
  FaultPlan P;
  std::string Error;
  ASSERT_TRUE(P.parse("child.crash@2;child.hang@3", &Error)) << Error;
  EXPECT_FALSE(P.childFaults(0, 0, 0).any());      // launch #1
  EXPECT_EQ(P.childFaults(0, 1, 0).CrashAction, "abort"); // launch #2
  EXPECT_TRUE(P.childFaults(0, 2, 0).Hang);        // launch #3
  EXPECT_FALSE(P.childFaults(0, 3, 0).any());      // launch #4
}

TEST(FaultPlanChaos, GeneratedPlansAreSeedDeterministicAndNeverKillTheRunner) {
  FaultPlan A = FaultPlan::chaos(123);
  FaultPlan B = FaultPlan::chaos(123);
  FaultPlan C = FaultPlan::chaos(124);
  EXPECT_FALSE(A.empty());
  EXPECT_EQ(A.describe(), B.describe());
  EXPECT_NE(A.describe(), C.describe());
  // Kill/resume loops are driven (and checked) by scripts/chaos.sh; the
  // generated plan itself must never SIGKILL the runner.
  for (const FaultSpec &S : A.specs())
    EXPECT_NE(S.Site, "runner.kill");
}

// -- The journal's integrity hash --------------------------------------------

TEST(Crc32, MatchesTheIeeeCheckVector) {
  // The canonical CRC-32/ISO-HDLC check value — and therefore compatible
  // with Python's zlib.crc32, which scripts/chaos.sh uses to validate
  // journal integrity tags from the outside.
  const char *Check = "123456789";
  EXPECT_EQ(dlf::crc32(Check, 9), 0xCBF43926u);
  EXPECT_EQ(dlf::crc32("", 0), 0u);
}

// -- Injection at a real site ------------------------------------------------

class GlobalPlanGuard {
public:
  explicit GlobalPlanGuard(const std::string &Spec) {
    FaultPlan P;
    std::string Error;
    EXPECT_TRUE(P.parse(Spec, &Error)) << Error;
    setPlan(std::move(P));
  }
  ~GlobalPlanGuard() { setPlan(FaultPlan()); }
};

TEST(FaultInjectSites, FailErrnoMapsActionsAndCountsHits) {
  GlobalPlanGuard G("journal.open:eacces@2;journal.write@1");
  EXPECT_TRUE(enabled());
  EXPECT_EQ(failErrno("journal.open", ENOSPC), 0);      // hit #1
  EXPECT_EQ(failErrno("journal.open", ENOSPC), EACCES); // hit #2
  // No explicit action: the site's caller-supplied default errno is used.
  EXPECT_EQ(failErrno("journal.write", ENOSPC), ENOSPC);
}

TEST(FaultInjectSites, InjectedFsyncFailureSurfacesThroughTheJournalWriter) {
  GlobalPlanGuard G("journal.fsync:eio@2");
  std::string Path = ::testing::TempDir() + "dlf-faultinject-" +
                     std::to_string(getpid()) + "-journal.jsonl";
  std::remove(Path.c_str());
  campaign::JournalWriter W;
  ASSERT_TRUE(W.open(Path, /*Truncate=*/true));
  campaign::JsonValue Rec = campaign::JsonValue::object();
  Rec.set("event", "rep");
  EXPECT_TRUE(W.append(Rec));  // fsync hit #1: clean
  EXPECT_FALSE(W.append(Rec)); // fsync hit #2: injected EIO
  EXPECT_NE(W.lastError().find("fsync"), std::string::npos) << W.lastError();
  EXPECT_NE(W.lastError().find("injected"), std::string::npos)
      << W.lastError();
  W.close();
  // The record whose fsync failed still reached the stream buffer-wise, but
  // the load path only trusts CRC-intact lines — both lines parse here, and
  // the first (durable) one is the header.
  campaign::JournalContents JC;
  std::string Error;
  ASSERT_TRUE(campaign::loadJournal(Path, JC, &Error)) << Error;
  std::remove(Path.c_str());
}

} // namespace
