//===- tests/EdgeCasesTest.cpp - Runtime & pipeline edge cases ----------------===//
//
// Corner cases a production runtime must survive: nested thread spawning,
// locks created (and destroyed) inside worker threads, address reuse,
// deep recursion, many-thread stress with per-seed determinism, and
// deadlocks between grandchildren.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/RandomStrategy.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

namespace {

using namespace dlf;

ExecutionResult runActive(const std::function<void()> &Entry,
                          uint64_t Seed = 1) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  Opts.Seed = Seed;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  return RT.run(Entry);
}

TEST(EdgeCases, NestedThreadSpawning) {
  // Threads spawning threads spawning threads; grandchildren synchronize
  // on a lock owned by the root scope.
  int Total = 0;
  ExecutionResult R = runActive([&] {
    Mutex Sum("nest-sum", DLF_SITE());
    std::vector<Thread> Children;
    for (int C = 0; C != 2; ++C) {
      Children.emplace_back(Thread([&Sum, C] {
        std::vector<Thread> GrandChildren;
        for (int G = 0; G != 2; ++G) {
          GrandChildren.emplace_back(Thread([&Sum] {
            // no-op work + lock
            MutexGuard Guard(Sum, DLF_NAMED_SITE("nest:leaf"));
          }));
        }
        for (Thread &GC : GrandChildren)
          GC.join();
        (void)C;
      }));
    }
    for (Thread &Child : Children)
      Child.join();
    MutexGuard Guard(Sum, DLF_NAMED_SITE("nest:root"));
    Total = 1;
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(Total, 1);
  EXPECT_EQ(R.AcquireEvents, 5u);
}

TEST(EdgeCases, DeadlockBetweenGrandchildren) {
  // The full pipeline works when the cycle participants are spawned by an
  // intermediate thread (abstractions chain through two creations).
  auto Program = [] {
    DLF_SCOPE("gc::main");
    Mutex A("gc-a", DLF_SITE());
    Mutex B("gc-b", DLF_SITE());
    Thread Middle(
        [&] {
          DLF_SCOPE("gc::middle");
          Thread Left(
              [&] {
                DLF_SCOPE("gc::left");
                for (int I = 0; I != 3; ++I)
                  yieldNow();
                MutexGuard First(A, DLF_NAMED_SITE("gc:la"));
                MutexGuard Second(B, DLF_NAMED_SITE("gc:lb"));
              },
              "gc.left", DLF_NAMED_SITE("gc:spawnLeft"));
          Thread Right(
              [&] {
                DLF_SCOPE("gc::right");
                MutexGuard First(B, DLF_NAMED_SITE("gc:rb"));
                MutexGuard Second(A, DLF_NAMED_SITE("gc:ra"));
              },
              "gc.right", DLF_NAMED_SITE("gc:spawnRight"));
          Left.join();
          Right.join();
        },
        "gc.middle", DLF_NAMED_SITE("gc:spawnMiddle"));
    Middle.join();
  };
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 8;
  ActiveTester Tester(Program, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_EQ(Report.PerCycle.size(), 1u);
  EXPECT_EQ(Report.PerCycle[0].ReproducedTarget, Report.PerCycle[0].Runs);
}

TEST(EdgeCases, LocksCreatedInsideWorkers) {
  // Worker-local locks are registered/deregistered by the worker itself;
  // abstractions come from the worker's own call path.
  ExecutionResult R = runActive([] {
    std::vector<Thread> Workers;
    for (int W = 0; W != 3; ++W) {
      Workers.emplace_back(Thread([] {
        DLF_SCOPE("wl::worker");
        Mutex Local("worker-local", DLF_NAMED_SITE("wl:newLock"));
        for (int I = 0; I != 4; ++I) {
          MutexGuard Guard(Local, DLF_NAMED_SITE("wl:acq"));
        }
      }));
    }
    for (Thread &W : Workers)
      W.join();
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 12u);
}

TEST(EdgeCases, MutexAddressReuse) {
  // Destroying and recreating locks in a loop (same stack address) must
  // produce fresh ids and distinct exec-index abstractions.
  std::vector<Abstraction> Abs;
  ExecutionResult R = runActive([&] {
    for (int I = 0; I != 5; ++I) {
      Mutex Fresh("reuse", DLF_NAMED_SITE("reuse:new"));
      Abs.push_back(Fresh.record()->Abs.Index);
      MutexGuard Guard(Fresh, DLF_NAMED_SITE("reuse:acq"));
    }
  });
  EXPECT_TRUE(R.Completed);
  ASSERT_EQ(Abs.size(), 5u);
  for (size_t I = 0; I != Abs.size(); ++I)
    for (size_t J = I + 1; J != Abs.size(); ++J)
      EXPECT_NE(Abs[I], Abs[J]) << I << " vs " << J;
}

TEST(EdgeCases, DeepLockNesting) {
  constexpr int Depth = 24;
  ExecutionResult R = runActive([] {
    std::vector<std::unique_ptr<Mutex>> Locks;
    for (int I = 0; I != Depth; ++I)
      Locks.push_back(std::make_unique<Mutex>(
          "deep" + std::to_string(I), DLF_NAMED_SITE("deep:new")));
    std::vector<std::unique_ptr<MutexGuard>> Guards;
    for (auto &L : Locks)
      Guards.push_back(
          std::make_unique<MutexGuard>(*L, DLF_NAMED_SITE("deep:acq")));
    Guards.clear(); // release all, reverse order
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, static_cast<uint64_t>(Depth));
}

TEST(EdgeCases, ManyThreadsStressDeterministic) {
  auto Program = [](std::vector<int> *Order) {
    Mutex M("stress", DLF_SITE());
    std::vector<Thread> Workers;
    for (int T = 0; T != 12; ++T) {
      Workers.emplace_back(Thread([&M, Order, T] {
        for (int I = 0; I != 6; ++I) {
          MutexGuard Guard(M, DLF_NAMED_SITE("stress:acq"));
          Order->push_back(T);
          yieldNow();
        }
      }));
    }
    for (Thread &W : Workers)
      W.join();
  };
  std::vector<int> First, Second;
  EXPECT_TRUE(runActive([&] { Program(&First); }, 99).Completed);
  EXPECT_TRUE(runActive([&] { Program(&Second); }, 99).Completed);
  EXPECT_EQ(First.size(), 72u);
  EXPECT_EQ(First, Second);
}

TEST(EdgeCases, RecursionDepthStress) {
  // Deep re-entrant locking: one event, many recursion levels.
  ExecutionResult R = runActive([] {
    Mutex M("recur", DLF_SITE());
    for (int I = 0; I != 200; ++I)
      M.lock(DLF_NAMED_SITE("recur:acq"));
    EXPECT_TRUE(M.heldByCurrentThread());
    for (int I = 0; I != 200; ++I)
      M.unlock();
    EXPECT_FALSE(M.heldByCurrentThread());
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 1u);
}

TEST(EdgeCases, ScopeDepthStress) {
  // Deep Call/Return nesting feeds the execution index without blowing up.
  ExecutionResult R = runActive([] {
    std::function<void(int)> Recurse = [&](int Depth) {
      if (Depth == 0) {
        Mutex Leaf("leaf", DLF_NAMED_SITE("scope:newLeaf"));
        MutexGuard Guard(Leaf, DLF_NAMED_SITE("scope:acq"));
        return;
      }
      DLF_SCOPE("scope:level");
      Recurse(Depth - 1);
    };
    Recurse(64);
  });
  EXPECT_TRUE(R.Completed);
}

TEST(EdgeCases, EmptyProgram) {
  ExecutionResult R = runActive([] {});
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 0u);
}

TEST(EdgeCases, WitnessToStringMentionsEverything) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run([] {
    Mutex A("wt-a", DLF_SITE());
    Mutex B("wt-b", DLF_SITE());
    bool AHeld = false, BHeld = false;
    Thread T1([&] {
      MutexGuard First(A, DLF_NAMED_SITE("wt:t1a"));
      AHeld = true;
      while (!BHeld)
        yieldNow();
      MutexGuard Second(B, DLF_NAMED_SITE("wt:t1b"));
    });
    Thread T2([&] {
      MutexGuard First(B, DLF_NAMED_SITE("wt:t2b"));
      BHeld = true;
      while (!AHeld)
        yieldNow();
      MutexGuard Second(A, DLF_NAMED_SITE("wt:t2a"));
    });
    T1.join();
    T2.join();
  });
  ASSERT_TRUE(R.Witness.has_value());
  std::string Text = R.Witness->toString();
  for (const char *Needle :
       {"wt-a", "wt-b", "wt:t1b", "wt:t2a", "context:", "length 2"})
    EXPECT_NE(Text.find(Needle), std::string::npos) << Needle << "\n" << Text;
}

} // namespace
