//===- tests/PrimitivesTest.cpp - tryLock & ConditionVariable ---------------===//
//
// Tests for the primitives beyond the paper's core model: non-blocking
// acquisition and managed condition variables, across the three runtime
// modes, including communication-stall classification.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/RandomStrategy.h"
#include "igoodlock/LockDependency.h"
#include "runtime/ConditionVariable.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace dlf;

ExecutionResult runActive(const std::function<void()> &Entry,
                          uint64_t Seed = 1,
                          DependencyRecorder *Recorder = nullptr) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  Opts.Seed = Seed;
  Opts.RecordDependencies = Recorder != nullptr;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy, Recorder);
  return RT.run(Entry);
}

// -- tryLock ---------------------------------------------------------------------

TEST(TryLock, StandaloneSemantics) {
  Mutex M("try-standalone");
  EXPECT_TRUE(M.tryLock());
  EXPECT_TRUE(M.tryLock()) << "re-entrant tryLock";
  M.unlock();
  M.unlock();
  EXPECT_FALSE(M.heldByCurrentThread());
}

TEST(TryLock, ActiveModeTakesFreeLock) {
  ExecutionResult R = runActive([] {
    Mutex M("try-active", DLF_SITE());
    EXPECT_TRUE(M.tryLock(DLF_NAMED_SITE("try:take")));
    EXPECT_TRUE(M.heldByCurrentThread());
    M.unlock();
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 1u);
}

TEST(TryLock, ActiveModeFailsOnHeldLock) {
  ExecutionResult R = runActive([] {
    Mutex M("try-held", DLF_SITE());
    bool ChildSawHeld = false;
    M.lock(DLF_NAMED_SITE("try:ownerTake"));
    Thread T([&] { ChildSawHeld = !M.tryLock(DLF_NAMED_SITE("try:steal")); });
    T.join();
    M.unlock();
    EXPECT_TRUE(ChildSawHeld);
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 1u) << "failed tryLock must not count";
}

TEST(TryLock, RecordsDependencyEntry) {
  LockDependencyLog Log;
  ExecutionResult R = runActive(
      [] {
        Mutex Outer("try-outer", DLF_SITE());
        Mutex Inner("try-inner", DLF_SITE());
        MutexGuard Guard(Outer, DLF_NAMED_SITE("tryrec:outer"));
        ASSERT_TRUE(Inner.tryLock(DLF_NAMED_SITE("tryrec:inner")));
        Inner.unlock();
      },
      1, &Log);
  EXPECT_TRUE(R.Completed);
  ASSERT_EQ(Log.entries().size(), 2u);
  EXPECT_EQ(Log.entries()[1].Held.size(), 1u);
  EXPECT_EQ(Log.entries()[1].Context.back(),
            Label::intern("tryrec:inner"));
}

TEST(TryLock, RecordModeCountsSuccessesOnly) {
  Options Opts;
  Opts.Mode = RunMode::Record;
  LockDependencyLog Log;
  Runtime RT(Opts, nullptr, &Log);
  RT.run([] {
    Mutex M("try-record", DLF_SITE());
    ASSERT_TRUE(M.tryLock(DLF_NAMED_SITE("tryrecord:a")));
    M.unlock();
  });
  EXPECT_EQ(Log.acquireEvents(), 1u);
}

// -- ConditionVariable -----------------------------------------------------------

/// Bounded-buffer producer/consumer over the managed primitives.
void producerConsumer(unsigned Items, unsigned Capacity) {
  DLF_SCOPE("pc::program");
  Mutex M("pc-lock", DLF_SITE());
  ConditionVariable NotFull("pc-notfull");
  ConditionVariable NotEmpty("pc-notempty");
  std::vector<int> Buffer;
  unsigned Produced = 0, Consumed = 0;

  Thread Producer(
      [&] {
        DLF_SCOPE("pc::producer");
        for (unsigned I = 0; I != Items; ++I) {
          MutexGuard Guard(M, DLF_NAMED_SITE("pc:produce"));
          NotFull.waitUntil(
              M, [&] { return Buffer.size() < Capacity; },
              DLF_NAMED_SITE("pc:produce-reacquire"));
          Buffer.push_back(static_cast<int>(I));
          ++Produced;
          NotEmpty.notifyOne();
        }
      },
      "pc.producer", DLF_SITE());
  Thread Consumer(
      [&] {
        DLF_SCOPE("pc::consumer");
        for (unsigned I = 0; I != Items; ++I) {
          MutexGuard Guard(M, DLF_NAMED_SITE("pc:consume"));
          NotEmpty.waitUntil(M, [&] { return !Buffer.empty(); },
                             DLF_NAMED_SITE("pc:consume-reacquire"));
          Buffer.erase(Buffer.begin());
          ++Consumed;
          NotFull.notifyOne();
        }
      },
      "pc.consumer", DLF_SITE());
  Producer.join();
  Consumer.join();
  if (Produced != Items || Consumed != Items)
    std::abort();
}

TEST(ConditionVariable, ProducerConsumerActiveMode) {
  for (uint64_t Seed : {1, 7, 23}) {
    ExecutionResult R =
        runActive([] { producerConsumer(12, 3); }, Seed);
    EXPECT_TRUE(R.Completed) << "seed " << Seed;
    EXPECT_FALSE(R.Stalled);
  }
}

TEST(ConditionVariable, ProducerConsumerPassthroughMode) {
  Options Opts;
  Opts.Mode = RunMode::Passthrough;
  Runtime RT(Opts);
  ExecutionResult R = RT.run([] { producerConsumer(50, 4); });
  EXPECT_TRUE(R.Completed);
}

TEST(ConditionVariable, ProducerConsumerRecordMode) {
  Options Opts;
  Opts.Mode = RunMode::Record;
  LockDependencyLog Log;
  Runtime RT(Opts, nullptr, &Log);
  ExecutionResult R = RT.run([] { producerConsumer(20, 4); });
  EXPECT_TRUE(R.Completed);
  EXPECT_GT(Log.acquireEvents(), 0u);
}

TEST(ConditionVariable, NotifyAllWakesEveryWaiter) {
  ExecutionResult R = runActive([] {
    Mutex M("na-lock", DLF_SITE());
    ConditionVariable Go("na-go");
    bool Ready = false;
    int Woken = 0;
    std::vector<Thread> Waiters;
    for (int T = 0; T != 4; ++T) {
      Waiters.emplace_back(Thread([&] {
        MutexGuard Guard(M, DLF_NAMED_SITE("na:waiter"));
        Go.waitUntil(M, [&] { return Ready; },
                     DLF_NAMED_SITE("na:reacquire"));
        ++Woken;
      }));
    }
    // Let the waiters park.
    for (int I = 0; I != 20; ++I)
      yieldNow();
    {
      MutexGuard Guard(M, DLF_NAMED_SITE("na:signal"));
      Ready = true;
      Go.notifyAll();
    }
    for (Thread &W : Waiters)
      W.join();
    EXPECT_EQ(Woken, 4);
  });
  EXPECT_TRUE(R.Completed);
}

TEST(ConditionVariable, NotifyWithoutWaitersIsLost) {
  ExecutionResult R = runActive([] {
    Mutex M("lost-lock", DLF_SITE());
    ConditionVariable CV("lost-cond");
    CV.notifyOne(); // no waiters: must be a harmless no-op
    CV.notifyAll();
    MutexGuard Guard(M, DLF_NAMED_SITE("lost:after"));
  });
  EXPECT_TRUE(R.Completed);
}

TEST(ConditionVariable, NeverNotifiedIsACommunicationStall) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run([] {
    Mutex M("cs-lock", DLF_SITE());
    ConditionVariable Never("cs-never");
    Thread Waiter([&] {
      MutexGuard Guard(M, DLF_NAMED_SITE("cs:waiter"));
      Never.wait(M, DLF_NAMED_SITE("cs:reacquire")); // nobody will notify
    });
    Waiter.join();
  });
  EXPECT_FALSE(R.Completed);
  EXPECT_TRUE(R.Stalled);
  EXPECT_TRUE(R.CommunicationStall)
      << "stall with a parked waiter must be classified as communication";
}

TEST(ConditionVariable, ResourceStallIsNotCommunication) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run([] {
    Mutex A("rs-a", DLF_SITE());
    Mutex B("rs-b", DLF_SITE());
    bool T1HasA = false, T2HasB = false;
    Thread T1([&] {
      MutexGuard First(A, DLF_NAMED_SITE("rs:t1a"));
      T1HasA = true;
      while (!T2HasB)
        yieldNow();
      MutexGuard Second(B, DLF_NAMED_SITE("rs:t1b"));
    });
    Thread T2([&] {
      MutexGuard First(B, DLF_NAMED_SITE("rs:t2b"));
      T2HasB = true;
      while (!T1HasA)
        yieldNow();
      MutexGuard Second(A, DLF_NAMED_SITE("rs:t2a"));
    });
    T1.join();
    T2.join();
  });
  EXPECT_TRUE(R.Stalled);
  EXPECT_FALSE(R.CommunicationStall);
}

TEST(ConditionVariable, WaitReleasesTheLockForOthers) {
  ExecutionResult R = runActive([] {
    Mutex M("rel-lock", DLF_SITE());
    ConditionVariable CV("rel-cond");
    bool Entered = false, Signalled = false;
    Thread Waiter([&] {
      MutexGuard Guard(M, DLF_NAMED_SITE("rel:wait"));
      Entered = true;
      CV.waitUntil(M, [&] { return Signalled; },
                   DLF_NAMED_SITE("rel:reacquire"));
    });
    // The signaller can take M *while the waiter is parked*: proof that
    // wait released it.
    Thread Signaller([&] {
      while (!Entered)
        yieldNow();
      MutexGuard Guard(M, DLF_NAMED_SITE("rel:signal"));
      Signalled = true;
      CV.notifyOne();
    });
    Waiter.join();
    Signaller.join();
  });
  EXPECT_TRUE(R.Completed);
}

} // namespace
