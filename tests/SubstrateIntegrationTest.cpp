//===- tests/SubstrateIntegrationTest.cpp - Two-phase pipeline per benchmark -===//
//
// Runs Phase I (iGoodlock) and Phase II (DeadlockFuzzer) on every benchmark
// substrate and checks the paper-level expectations: cycle counts, zero
// false alarms on deadlock-free workloads, confirmability of the real
// cycles, and the §5.4 false positives never confirming.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "substrates/BenchmarkRegistry.h"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace dlf;

ActiveTesterConfig testConfig(unsigned Reps = 6) {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = Reps;
  return Config;
}

const BenchmarkInfo &bench(const std::string &Name) {
  const BenchmarkInfo *Info = findBenchmark(Name);
  EXPECT_NE(Info, nullptr) << Name;
  return *Info;
}

// -- Deadlock-free workloads ---------------------------------------------------

class DeadlockFreeWorkloads : public ::testing::TestWithParam<const char *> {};

TEST_P(DeadlockFreeWorkloads, PhaseOneCompletesWithZeroCycles) {
  const BenchmarkInfo &Info = bench(GetParam());
  ActiveTester Tester(Info.Entry, testConfig());
  PhaseOneResult P1 = Tester.runPhaseOne();
  EXPECT_TRUE(P1.Exec.Completed);
  EXPECT_EQ(P1.Cycles.size(), 0u);
  EXPECT_GT(P1.Log.acquireEvents(), 0u) << "workload did no locking at all?";
}

INSTANTIATE_TEST_SUITE_P(Workloads, DeadlockFreeWorkloads,
                         ::testing::Values("cache4j", "sor", "hedc",
                                           "jspider"));

// -- Deadlock-prone benchmarks ---------------------------------------------------

TEST(LoggingBenchmark, ThreeCyclesAllConfirmed) {
  const BenchmarkInfo &Info = bench("logging");
  ActiveTester Tester(Info.Entry, testConfig(8));
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PhaseOne.Cycles.size(), 3u) << Report.toString();
  EXPECT_EQ(Report.confirmedCycles(), 3u) << Report.toString();
}

TEST(DbcpBenchmark, TwoCyclesAllConfirmed) {
  const BenchmarkInfo &Info = bench("dbcp");
  ActiveTester Tester(Info.Entry, testConfig(8));
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PhaseOne.Cycles.size(), 2u) << Report.toString();
  EXPECT_EQ(Report.confirmedCycles(), 2u) << Report.toString();
}

TEST(SwingBenchmark, OneCycleConfirmed) {
  const BenchmarkInfo &Info = bench("swing");
  ActiveTester Tester(Info.Entry, testConfig(8));
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PhaseOne.Cycles.size(), 1u) << Report.toString();
  EXPECT_EQ(Report.confirmedCycles(), 1u) << Report.toString();
}

TEST(RwlockAbbaBenchmark, OneCycleConfirmed) {
  // Exists only in the widened alphabet: the shared registry gate and the
  // read-side table holds would make a mutex-only closure discard the
  // inversion as guarded; with modes it survives and Phase II schedules it.
  const BenchmarkInfo &Info = bench("rwlock-abba");
  ActiveTester Tester(Info.Entry, testConfig(8));
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PhaseOne.Cycles.size(), 1u) << Report.toString();
  EXPECT_EQ(Report.confirmedCycles(), 1u) << Report.toString();
}

TEST(CondvarHybridBenchmark, OneCycleConfirmed) {
  // Every plain acquisition is state->journal; the cycle exists only
  // through the cond-wait reacquire edge, and confirming it requires the
  // scheduler to pause the notified waiter before it re-enters the lock.
  const BenchmarkInfo &Info = bench("condvar-hybrid");
  ActiveTester Tester(Info.Entry, testConfig(8));
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PhaseOne.Cycles.size(), 1u) << Report.toString();
  EXPECT_EQ(Report.confirmedCycles(), 1u) << Report.toString();
}

TEST(ListsBenchmark, TwentySevenCyclesHighProbability) {
  const BenchmarkInfo &Info = bench("collections-lists");
  ActiveTester Tester(Info.Entry, testConfig(4));
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PhaseOne.Cycles.size(), 27u) << Report.toString();
  // The paper reproduces 9+9+9 with probability 0.99; require every cycle
  // confirmed and a high aggregate rate.
  EXPECT_EQ(Report.confirmedCycles(), 27u) << Report.toString();
  unsigned Hits = 0, Runs = 0;
  for (const CycleFuzzStats &S : Report.PerCycle) {
    Hits += S.ReproducedTarget;
    Runs += S.Runs;
  }
  EXPECT_GE(static_cast<double>(Hits) / Runs, 0.9) << Report.toString();
}

TEST(MapsBenchmark, TwentyCyclesMixedProbability) {
  const BenchmarkInfo &Info = bench("collections-maps");
  ActiveTester Tester(Info.Entry, testConfig(6));
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PhaseOne.Cycles.size(), 20u) << Report.toString();
  // Concurrent contention on the shared monitors means some runs create a
  // different deadlock than the target (paper: probability 0.52); require
  // most cycles confirmed and at least some off-target deadlocks observed.
  EXPECT_GE(Report.confirmedCycles(), 15u) << Report.toString();
  unsigned Other = 0;
  for (const CycleFuzzStats &S : Report.PerCycle)
    Other += S.OtherDeadlocks;
  EXPECT_GT(Other, 0u) << Report.toString();
}

TEST(JigsawBenchmark, ManyCyclesSomeConfirmedFalsePositivesNever) {
  const BenchmarkInfo &Info = bench("jigsaw");
  ActiveTester Tester(Info.Entry, testConfig(6));
  ActiveTesterReport Report = Tester.run();
  // Schedule-dependent, but the structure guarantees a cycle-rich report.
  EXPECT_GE(Report.PhaseOne.Cycles.size(), 8u) << Report.toString();
  EXPECT_GE(Report.confirmedCycles(), 4u) << Report.toString();
  EXPECT_LT(Report.confirmedCycles(), Report.PhaseOne.Cycles.size())
      << "expected at least the happens-before false positives to stay "
         "unconfirmed";

  // The CachedThread cycles (§5.4 false positives) must never confirm.
  for (const CycleFuzzStats &S : Report.PerCycle) {
    bool IsCachedThreadCycle = false;
    for (const CycleComponent &C : S.Cycle.Components)
      for (Label Site : C.Context)
        if (Site.text().find("CachedThread") != std::string::npos)
          IsCachedThreadCycle = true;
    if (IsCachedThreadCycle) {
      EXPECT_EQ(S.ReproducedTarget, 0u)
          << "happens-before-infeasible cycle confirmed?!\n"
          << S.Cycle.toString();
    }
  }
}

TEST(RecordPhaseOne, HedcObservedConcurrently) {
  // Phase I over a *real* concurrent execution (Record mode): the crawler
  // nests queue->task consistently, so the relation has two-lock entries
  // but no cycles.
  ActiveTesterConfig Config;
  Config.PhaseOneMode = RunMode::Record;
  ActiveTester Tester(bench("hedc").Entry, Config);
  PhaseOneResult P1 = Tester.runPhaseOne();
  EXPECT_TRUE(P1.Exec.Completed);
  EXPECT_EQ(P1.Cycles.size(), 0u);
  bool AnyNested = false;
  for (const DependencyEntry &E : P1.Log.entries())
    AnyNested = AnyNested || !E.Held.empty();
  EXPECT_TRUE(AnyNested) << "expected nested acquisitions in the log";
}

TEST(RecordPhaseOne, AgreesWithActivePhaseOneOnLists) {
  // The two observation modes must report the same abstract cycles: the
  // lists harness is staggered enough that a genuinely concurrent run
  // cannot realistically deadlock.
  ActiveTesterConfig RecordConfig;
  RecordConfig.PhaseOneMode = RunMode::Record;
  ActiveTester RecordTester(bench("collections-lists").Entry, RecordConfig);
  PhaseOneResult RecordP1 = RecordTester.runPhaseOne();

  ActiveTesterConfig ActiveConfig;
  ActiveTester ActiveTesterInst(bench("collections-lists").Entry,
                                ActiveConfig);
  PhaseOneResult ActiveP1 = ActiveTesterInst.runPhaseOne();

  std::set<std::string> RecordKeys, ActiveKeys;
  for (const AbstractCycle &Cycle : RecordP1.Cycles)
    RecordKeys.insert(Cycle.key(AbstractionKind::ExecutionIndex, true));
  for (const AbstractCycle &Cycle : ActiveP1.Cycles)
    ActiveKeys.insert(Cycle.key(AbstractionKind::ExecutionIndex, true));
  EXPECT_EQ(RecordKeys, ActiveKeys);
  EXPECT_EQ(RecordKeys.size(), 27u);
}

} // namespace
