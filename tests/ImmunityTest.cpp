//===- tests/ImmunityTest.cpp - Avoidance extension ---------------------------===//
//
// Tests for the Dimmunix-style avoidance extension: once DeadlockFuzzer
// has confirmed a cycle, the runtime can keep that cycle infeasible by
// deferring a participant's entry acquire while another participant is in
// flight (the serialization a guard lock would impose).
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/DeadlockFuzzerStrategy.h"
#include "fuzzer/RandomStrategy.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;

/// ABBA without any stagger: under the serialized random scheduler this
/// stalls in roughly half of all seeds — a good stress for avoidance.
void hotAbba() {
  Mutex A("im-a", DLF_SITE());
  Mutex B("im-b", DLF_SITE());
  Thread T1([&] {
    MutexGuard First(A, DLF_NAMED_SITE("im:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("im:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("im:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("im:t2a"));
  });
  T1.join();
  T2.join();
}

TEST(Immunity, HotAbbaStallsWithoutIt) {
  // Sanity: the workload really deadlocks for some seed within a few
  // tries (otherwise the immunity test below proves nothing).
  ActiveTesterConfig Config;
  ActiveTester Tester(hotAbba, Config);
  bool Stalled = false;
  for (uint64_t Seed = 1; Seed != 20 && !Stalled; ++Seed) {
    Options Opts = Config.Base;
    Opts.Mode = RunMode::Active;
    Opts.Seed = Seed;
    SimpleRandomStrategy Random;
    Runtime RT(Opts, &Random);
    Stalled = RT.run(hotAbba).Stalled;
  }
  EXPECT_TRUE(Stalled) << "workload never deadlocked; test is vacuous";
}

TEST(Immunity, ConfirmedCycleBecomesInfeasible) {
  // Find + confirm the cycle, build immunity, then run many seeds: every
  // run must complete.
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 5;
  ActiveTester Tester(hotAbba, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_EQ(Report.PerCycle.size(), 1u);
  ASSERT_GT(Report.PerCycle[0].ReproducedTarget, 0u);

  std::vector<CycleSpec> Immunity = ActiveTester::buildImmunity(Report);
  ASSERT_EQ(Immunity.size(), 1u);

  for (uint64_t Seed = 1; Seed != 40; ++Seed) {
    ExecutionResult R = Tester.runWithImmunity(Immunity, Seed);
    EXPECT_TRUE(R.Completed) << "seed " << Seed;
    EXPECT_FALSE(R.Stalled) << "seed " << Seed;
    EXPECT_FALSE(R.DeadlockFound);
  }
}

TEST(Immunity, DefeatsTheFuzzerItself) {
  // The strongest test: run the *biased* scheduler (which actively steers
  // into the cycle) with avoidance armed — the deadlock must not form.
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 5;
  ActiveTester Tester(hotAbba, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_GT(Report.confirmedCycles(), 0u);
  std::vector<CycleSpec> Immunity = ActiveTester::buildImmunity(Report);

  for (uint64_t Seed = 1; Seed != 15; ++Seed) {
    Options Opts = Config.Base;
    Opts.Mode = RunMode::Active;
    Opts.Seed = Seed;
    CycleSpec Target(Report.PerCycle[0].Cycle, Opts.Kind, Opts.UseContext);
    DeadlockFuzzerStrategy Fuzzer(std::move(Target));
    Runtime RT(Opts, &Fuzzer, nullptr, &Immunity);
    ExecutionResult R = RT.run(hotAbba);
    EXPECT_FALSE(R.DeadlockFound) << "seed " << Seed;
    EXPECT_FALSE(R.Stalled) << "seed " << Seed;
    EXPECT_TRUE(R.Completed) << "seed " << Seed;
  }
}

TEST(Immunity, UnrelatedProgramsUnaffected) {
  // Immunity built for one program must not perturb a different one (the
  // abstractions simply never match).
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 5;
  ActiveTester Tester(hotAbba, Config);
  ActiveTesterReport Report = Tester.run();
  std::vector<CycleSpec> Immunity = ActiveTester::buildImmunity(Report);

  auto Unrelated = [] {
    Mutex M("unrelated", DLF_SITE());
    Thread T([&] {
      for (int I = 0; I != 10; ++I) {
        MutexGuard Guard(M, DLF_NAMED_SITE("unrelated:acq"));
      }
    });
    T.join();
  };
  ActiveTester Other(Unrelated, Config);
  ExecutionResult R = Other.runWithImmunity(Immunity, 3);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.AcquireEvents, 10u);
}

TEST(Immunity, BlockedParticipantCountsAsInProgress) {
  // Regression: a cycle participant *blocked* on its final acquire carries
  // the pending lock in its stack (full-length context). Avoidance must
  // treat it as in-progress, or a third thread's release lets the other
  // participant slip in and the deadlock forms anyway.
  auto Pipeline = [] {
    Mutex Buffer("bp-buffer", DLF_SITE());
    Mutex Stats("bp-stats", DLF_SITE());
    Thread Producer([&] {
      for (int I = 0; I != 4; ++I) {
        MutexGuard B(Buffer, DLF_NAMED_SITE("bp:produce/buffer"));
        MutexGuard S(Stats, DLF_NAMED_SITE("bp:produce/stats"));
      }
    });
    Thread Monitor([&] {
      for (int I = 0; I != 3; ++I) {
        MutexGuard S(Stats, DLF_NAMED_SITE("bp:flush/stats"));
        MutexGuard B(Buffer, DLF_NAMED_SITE("bp:flush/buffer"));
      }
    });
    Thread Reader([&] {
      // The third party whose releases re-arm deferred threads.
      for (int I = 0; I != 6; ++I) {
        MutexGuard B(Buffer, DLF_NAMED_SITE("bp:read/buffer"));
        yieldNow();
      }
    });
    Producer.join();
    Monitor.join();
    Reader.join();
  };

  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 5;
  ActiveTester Tester(Pipeline, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_GT(Report.confirmedCycles(), 0u);
  std::vector<CycleSpec> Immunity = ActiveTester::buildImmunity(Report);
  for (uint64_t Seed = 1; Seed != 30; ++Seed) {
    ExecutionResult R = Tester.runWithImmunity(Immunity, Seed);
    EXPECT_TRUE(R.Completed) << "seed " << Seed;
  }
}

TEST(Immunity, EmptyImmunityIsANoOp) {
  ActiveTesterConfig Config;
  ActiveTester Tester(hotAbba, Config);
  std::vector<CycleSpec> Empty;
  // With no specs the workload behaves exactly as without avoidance: some
  // seed stalls.
  bool Stalled = false;
  for (uint64_t Seed = 1; Seed != 20 && !Stalled; ++Seed)
    Stalled = Tester.runWithImmunity(Empty, Seed).Stalled;
  EXPECT_TRUE(Stalled);
}

} // namespace
