//===- tests/SupportTest.cpp - support/ unit tests --------------------------===//

#include "support/Env.h"
#include "support/Rng.h"
#include "support/Table.h"

#include "event/Label.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

namespace {

using namespace dlf;

// -- Rng ---------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng A(12345), B(12345);
  for (int I = 0; I != 1000; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool Diverged = false;
  for (int I = 0; I != 16 && !Diverged; ++I)
    Diverged = (A.next() != B.next());
  EXPECT_TRUE(Diverged);
}

TEST(Rng, ReseedRestartsStream) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(99);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 7ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I != 200; ++I)
      ASSERT_LT(R.nextBelow(Bound), Bound) << "bound " << Bound;
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng R(5);
  for (int I = 0; I != 50; ++I)
    ASSERT_EQ(R.nextBelow(1), 0u);
}

TEST(Rng, NextIndexCoversAllSlots) {
  // Every index of a small range should be hit within a few hundred draws.
  Rng R(31337);
  std::set<size_t> Seen;
  for (int I = 0; I != 500; ++I)
    Seen.insert(R.nextIndex(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(4);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
  }
}

TEST(Rng, NextBoolEdgeCases) {
  Rng R(8);
  for (int I = 0; I != 100; ++I) {
    ASSERT_FALSE(R.nextBool(0.0));
    ASSERT_TRUE(R.nextBool(1.0));
  }
}

TEST(Rng, NextBoolRoughlyFair) {
  Rng R(17);
  int Heads = 0;
  for (int I = 0; I != 10000; ++I)
    Heads += R.nextBool(0.5) ? 1 : 0;
  EXPECT_GT(Heads, 4500);
  EXPECT_LT(Heads, 5500);
}

TEST(Rng, UniformityChiSquaredish) {
  // 8 buckets over 8000 draws: each bucket within 3x sigma of 1000.
  Rng R(2024);
  int Buckets[8] = {0};
  for (int I = 0; I != 8000; ++I)
    ++Buckets[R.nextBelow(8)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, 850);
    EXPECT_LT(Count, 1150);
  }
}

// -- Env ---------------------------------------------------------------------

TEST(Env, StringDefaultsAndValues) {
  unsetenv("DLF_TEST_ENV");
  EXPECT_EQ(envString("DLF_TEST_ENV", "fallback"), "fallback");
  setenv("DLF_TEST_ENV", "value", 1);
  EXPECT_EQ(envString("DLF_TEST_ENV", "fallback"), "value");
  setenv("DLF_TEST_ENV", "", 1);
  EXPECT_EQ(envString("DLF_TEST_ENV", "fallback"), "fallback");
  unsetenv("DLF_TEST_ENV");
}

TEST(Env, IntParsing) {
  setenv("DLF_TEST_ENV", "42", 1);
  EXPECT_EQ(envInt("DLF_TEST_ENV", -1), 42);
  setenv("DLF_TEST_ENV", "-7", 1);
  EXPECT_EQ(envInt("DLF_TEST_ENV", 0), -7);
  setenv("DLF_TEST_ENV", "notanumber", 1);
  EXPECT_EQ(envInt("DLF_TEST_ENV", 13), 13);
  setenv("DLF_TEST_ENV", "12abc", 1);
  EXPECT_EQ(envInt("DLF_TEST_ENV", 13), 13) << "trailing junk must not parse";
  unsetenv("DLF_TEST_ENV");
  EXPECT_EQ(envInt("DLF_TEST_ENV", 99), 99);
}

TEST(Env, UIntRejectsNegative) {
  setenv("DLF_TEST_ENV", "-5", 1);
  EXPECT_EQ(envUInt("DLF_TEST_ENV", 3), 3u);
  setenv("DLF_TEST_ENV", "5", 1);
  EXPECT_EQ(envUInt("DLF_TEST_ENV", 3), 5u);
  unsetenv("DLF_TEST_ENV");
}

TEST(Env, BoolSpellings) {
  for (const char *True : {"1", "true", "TRUE", "yes", "on", "On"}) {
    setenv("DLF_TEST_ENV", True, 1);
    EXPECT_TRUE(envBool("DLF_TEST_ENV", false)) << True;
  }
  for (const char *False : {"0", "false", "no", "off", "OFF"}) {
    setenv("DLF_TEST_ENV", False, 1);
    EXPECT_FALSE(envBool("DLF_TEST_ENV", true)) << False;
  }
  setenv("DLF_TEST_ENV", "maybe", 1);
  EXPECT_TRUE(envBool("DLF_TEST_ENV", true));
  EXPECT_FALSE(envBool("DLF_TEST_ENV", false));
  unsetenv("DLF_TEST_ENV");
}

// -- Table -------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table T({"Name", "Value"});
  T.addRow({"x", "1"});
  T.addRow({"longer-name", "23456"});
  std::string Out = T.toString();
  // Header separator present, all rows same width.
  EXPECT_NE(Out.find("| Name"), std::string::npos);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  size_t FirstLine = Out.find('\n');
  size_t Width = FirstLine;
  size_t Pos = 0;
  int Lines = 0;
  while (Pos < Out.size()) {
    size_t End = Out.find('\n', Pos);
    if (End == std::string::npos)
      break;
    EXPECT_EQ(End - Pos, Width) << "ragged table row";
    Pos = End + 1;
    ++Lines;
  }
  EXPECT_EQ(Lines, 4); // header + separator + 2 rows
}

TEST(Table, PadsShortRows) {
  Table T({"A", "B", "C"});
  T.addRow({"only-one"});
  std::string Out = T.toString();
  EXPECT_NE(Out.find("only-one"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 3), "1.000");
  EXPECT_EQ(Table::fmt(uint64_t(42)), "42");
}

// -- Label -------------------------------------------------------------------

TEST(Label, InternIsIdempotent) {
  Label A = Label::intern("tests/label/one");
  Label B = Label::intern("tests/label/one");
  Label C = Label::intern("tests/label/two");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A.text(), "tests/label/one");
}

TEST(Label, InvalidLabel) {
  Label Default;
  EXPECT_FALSE(Default.isValid());
  EXPECT_EQ(Default.text(), "<none>");
}

TEST(Label, TextByRawOutOfRange) {
  EXPECT_EQ(Label::textByRaw(0xFFFFFFFF), "<none>");
}

TEST(Label, FromRawRoundTrips) {
  Label A = Label::intern("tests/label/roundtrip");
  EXPECT_EQ(Label::fromRaw(A.raw()), A);
}

TEST(Label, ConcurrentInterningIsConsistent) {
  // Many threads interning overlapping strings must agree on the ids.
  constexpr int Threads = 8;
  constexpr int Strings = 64;
  std::vector<std::vector<uint32_t>> Results(Threads,
                                             std::vector<uint32_t>(Strings));
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T) {
    Workers.emplace_back([T, &Results] {
      for (int S = 0; S != Strings; ++S)
        Results[T][S] =
            Label::intern("tests/label/concurrent" + std::to_string(S)).raw();
    });
  }
  for (auto &W : Workers)
    W.join();
  for (int T = 1; T != Threads; ++T)
    EXPECT_EQ(Results[T], Results[0]);
}

TEST(Label, SiteMacroCachesPerLine) {
  Label A = DLF_SITE();
  Label B = DLF_SITE();
  EXPECT_NE(A, B) << "different lines must differ";
  auto Twice = [] { return DLF_SITE(); };
  EXPECT_EQ(Twice(), Twice()) << "same line must cache";
  EXPECT_EQ(DLF_NAMED_SITE("tests/named"), Label::intern("tests/named"));
}

TEST(Env, ParseUint64StrictAcceptsOnlyCleanDecimals) {
  uint64_t V = 0;
  EXPECT_TRUE(parseUint64Strict("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseUint64Strict("5000", V));
  EXPECT_EQ(V, 5000u);
  EXPECT_TRUE(parseUint64Strict("18446744073709551615", V));
  EXPECT_EQ(V, UINT64_MAX);

  // Everything atoi would silently misparse must be rejected outright.
  for (const char *Bad :
       {"", "abc", "12x", "-3", "+3", " 7", "7 ", "1e3", "0x10",
        "18446744073709551616", static_cast<const char *>(nullptr)})
    EXPECT_FALSE(parseUint64Strict(Bad, V)) << (Bad ? Bad : "<null>");
}

} // namespace
