//===- tests/IGoodlockTest.cpp - Algorithm 1 unit tests ----------------------===//
//
// Drives the iterative closure on hand-built lock dependency relations,
// checking each clause of Definitions 1-3 plus the §2.2.3 duplicate rule,
// the guard-lock suppression classical Goodlock is known for, and the
// bounded-iteration mode.
//
//===----------------------------------------------------------------------===//

#include "igoodlock/IGoodlock.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;

/// Small DSL for building relations: threads and locks are small ints.
class RelationBuilder {
public:
  /// Adds (thread, {held...}, acquired); context sites are derived from
  /// the lock numbers so reports are checkable.
  RelationBuilder &dep(uint64_t Thread, std::vector<uint64_t> Held,
                       uint64_t Acquired) {
    ThreadRecord T;
    T.Id = ThreadId(Thread);
    T.Name = "t" + std::to_string(Thread);
    T.Abs.Index.Elements = {static_cast<uint32_t>(Thread), 1};
    Log.onThreadCreated(T);

    auto EnsureLock = [&](uint64_t L) {
      LockRecord Rec;
      Rec.Id = LockId(L);
      Rec.Name = "l" + std::to_string(L);
      Rec.Abs.Index.Elements = {static_cast<uint32_t>(L), 1};
      Log.onLockCreated(Rec);
      return Rec;
    };

    std::vector<LockStackEntry> Stack;
    for (uint64_t H : Held) {
      EnsureLock(H);
      Stack.push_back({LockId(H), site(H)});
    }
    LockRecord Acq = EnsureLock(Acquired);
    Log.onAcquireExecuted(T, Acq, Stack, site(Acquired),
                          LockMode::Exclusive);
    return *this;
  }

  static Label site(uint64_t Lock) {
    return Label::intern("ig:acq" + std::to_string(Lock));
  }

  std::vector<AbstractCycle> run(IGoodlockOptions Opts = {},
                                 IGoodlockStats *Stats = nullptr) {
    return runIGoodlock(Log, Opts, Stats);
  }

  LockDependencyLog Log;
};

TEST(IGoodlock, SimpleTwoCycle) {
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 10);
  auto Cycles = B.run();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Components.size(), 2u);
  EXPECT_EQ(Cycles[0].Components[0].ThreadName, "t1");
  EXPECT_EQ(Cycles[0].Components[1].ThreadName, "t2");
}

TEST(IGoodlock, RotationReportedOnce) {
  // The same cycle discoverable from either thread must appear once
  // (duplicate suppression: minimal thread id first, §2.2.3).
  RelationBuilder B;
  B.dep(2, {11}, 10).dep(1, {10}, 11); // insertion order reversed
  auto Cycles = B.run();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Multiplicity, 1u);
  EXPECT_EQ(Cycles[0].Components[0].Thread, ThreadId(1))
      << "chain must start at the minimal thread id";
}

TEST(IGoodlock, NoCycleInOrderedProgram) {
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {10}, 11).dep(3, {10, 11}, 12);
  EXPECT_TRUE(B.run().empty());
}

TEST(IGoodlock, SameThreadCannotCloseACycle) {
  // Definition 2 clause 1: distinct threads. One thread acquiring in both
  // orders (at different times) is not a deadlock.
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(1, {11}, 10);
  EXPECT_TRUE(B.run().empty());
}

TEST(IGoodlock, GuardLockSuppressesCycle) {
  // The classical Goodlock guard (gate) lock rule falls out of clause 4
  // (pairwise-disjoint held sets): both inversions happen under a common
  // lock G, so the deadlock cannot happen.
  RelationBuilder B;
  B.dep(1, {5, 10}, 11).dep(2, {5, 11}, 10);
  EXPECT_TRUE(B.run().empty()) << "guarded inversion is not a deadlock";
}

TEST(IGoodlock, UnguardedVariantStillReported) {
  // Same as above but only one side holds the guard: the cycle is real.
  RelationBuilder B;
  B.dep(1, {5, 10}, 11).dep(2, {11}, 10);
  EXPECT_EQ(B.run().size(), 1u);
}

TEST(IGoodlock, ThreeCycle) {
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 12).dep(3, {12}, 10);
  auto Cycles = B.run();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Components.size(), 3u);
}

TEST(IGoodlock, ThreeCycleNotReportedWhenLengthBounded) {
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 12).dep(3, {12}, 10);
  IGoodlockOptions Opts;
  Opts.MaxCycleLength = 2;
  EXPECT_TRUE(B.run(Opts).empty());
  Opts.MaxCycleLength = 3;
  EXPECT_EQ(B.run(Opts).size(), 1u);
}

TEST(IGoodlock, ShorterCyclesFoundBeforeLonger) {
  // A 2-cycle and a 3-cycle coexist; iterative deepening reports both, and
  // the stats show the iteration count reached 3.
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 10);                  // 2-cycle
  B.dep(3, {20}, 21).dep(4, {21}, 22).dep(5, {22}, 20); // 3-cycle
  IGoodlockStats Stats;
  auto Cycles = B.run({}, &Stats);
  ASSERT_EQ(Cycles.size(), 2u);
  EXPECT_EQ(Cycles[0].Components.size(), 2u) << "2-cycle first";
  EXPECT_EQ(Cycles[1].Components.size(), 3u);
  EXPECT_GE(Stats.Iterations, 2u);
}

TEST(IGoodlock, NoComplexCycles) {
  // Two independent 2-cycles sharing a thread's locks in a larger ring:
  // cycles must not be extended once closed, so the "figure eight" is
  // reported as its two simple halves only.
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 10); // half one
  B.dep(3, {12}, 13).dep(4, {13}, 12); // half two
  auto Cycles = B.run();
  EXPECT_EQ(Cycles.size(), 2u);
  for (const AbstractCycle &Cycle : Cycles)
    EXPECT_EQ(Cycle.Components.size(), 2u);
}

TEST(IGoodlock, DistinctAcquiredLocksRequired) {
  // Definition 2 clause 2: l1, l2 distinct. Craft entries where the same
  // lock would be acquired twice along a chain.
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11, 12}, 11);
  EXPECT_TRUE(B.run().empty());
}

TEST(IGoodlock, ContextsCarriedIntoReport) {
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 10);
  auto Cycles = B.run();
  ASSERT_EQ(Cycles.size(), 1u);
  const CycleComponent &C0 = Cycles[0].Components[0];
  ASSERT_EQ(C0.Context.size(), 2u);
  EXPECT_EQ(C0.Context[0], RelationBuilder::site(10));
  EXPECT_EQ(C0.Context[1], RelationBuilder::site(11));
}

TEST(IGoodlock, MultiplicityCountsCollapsedChains) {
  // Two concrete chains with identical abstractions collapse into one
  // abstract cycle with multiplicity 2: same thread/lock abstractions,
  // different concrete ids. Build two thread pairs whose records share
  // abstraction elements.
  LockDependencyLog Log;
  auto AddPair = [&](uint64_t TBase, uint64_t LBase) {
    for (int Side = 0; Side != 2; ++Side) {
      ThreadRecord T;
      T.Id = ThreadId(TBase + static_cast<uint64_t>(Side));
      T.Name = "t";
      T.Abs.Index.Elements = {7u + static_cast<uint32_t>(Side), 1};
      Log.onThreadCreated(T);
      LockRecord Held, Acq;
      Held.Id = LockId(LBase + static_cast<uint64_t>(Side));
      Held.Abs.Index.Elements = {100u + static_cast<uint32_t>(Side)};
      Acq.Id = LockId(LBase + static_cast<uint64_t>(1 - Side));
      Acq.Abs.Index.Elements = {100u + static_cast<uint32_t>(1 - Side)};
      Log.onLockCreated(Held);
      Log.onLockCreated(Acq);
      std::vector<LockStackEntry> Stack = {
          {Held.Id, Label::intern("mult:outer")}};
      Log.onAcquireExecuted(T, Acq, Stack, Label::intern("mult:inner"),
                            LockMode::Exclusive);
    }
  };
  AddPair(1, 10);
  AddPair(3, 20); // same abstractions, different concrete ids
  auto Cycles = runIGoodlock(Log);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Multiplicity, 2u);
}

TEST(IGoodlock, EmptyRelation) {
  LockDependencyLog Log;
  EXPECT_TRUE(runIGoodlock(Log).empty());
}

TEST(IGoodlock, DedupInRecorder) {
  RelationBuilder B;
  for (int I = 0; I != 50; ++I)
    B.dep(1, {10}, 11); // identical entries: a loop
  EXPECT_EQ(B.Log.entries().size(), 1u);
  EXPECT_EQ(B.Log.acquireEvents(), 50u);
}

TEST(IGoodlock, DifferentContextsAreDifferentEntries) {
  LockDependencyLog Log;
  ThreadRecord T;
  T.Id = ThreadId(1);
  Log.onThreadCreated(T);
  LockRecord Held, Acq;
  Held.Id = LockId(10);
  Acq.Id = LockId(11);
  Log.onLockCreated(Held);
  Log.onLockCreated(Acq);
  std::vector<LockStackEntry> Stack = {{Held.Id, Label::intern("dc:a")}};
  Log.onAcquireExecuted(T, Acq, Stack, Label::intern("dc:x"),
                        LockMode::Exclusive);
  Log.onAcquireExecuted(T, Acq, Stack, Label::intern("dc:y"),
                        LockMode::Exclusive);
  EXPECT_EQ(Log.entries().size(), 2u);
}

TEST(IGoodlock, CycleCapTruncates) {
  // 2N threads form N separate 2-cycles; a cap below N must truncate and
  // say so.
  RelationBuilder B;
  for (uint64_t I = 0; I != 20; ++I) {
    uint64_t L = 100 + 2 * I;
    B.dep(1 + 2 * I, {L}, L + 1).dep(2 + 2 * I, {L + 1}, L);
  }
  IGoodlockOptions Opts;
  Opts.MaxCycles = 5;
  IGoodlockStats Stats;
  auto Cycles = B.run(Opts, &Stats);
  EXPECT_EQ(Cycles.size(), 5u);
  EXPECT_TRUE(Stats.Truncated);
}

TEST(IGoodlock, LongChainRing) {
  // A ring of 6 threads: exactly one cycle of length 6.
  RelationBuilder B;
  constexpr uint64_t N = 6;
  for (uint64_t I = 0; I != N; ++I)
    B.dep(I + 1, {10 + I}, 10 + ((I + 1) % N));
  IGoodlockOptions Opts;
  Opts.MaxCycleLength = 8;
  auto Cycles = B.run(Opts);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Components.size(), N);
}

TEST(IGoodlock, HeldSetsWithMultipleLocks) {
  // Deep nesting: t1 holds {A,B} acquiring C; t2 holds {C} acquiring A.
  // Valid cycle: C in held of t2? t2 holds C and wants A which is held by
  // t1 -> chain t1(C) ... check both directions.
  RelationBuilder B;
  B.dep(1, {10, 11}, 12).dep(2, {12}, 10);
  auto Cycles = B.run();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Components.size(), 2u);
}

TEST(IGoodlock, MaxChainsAbortsLevel) {
  // A chain of 8 threads t1..t8 (ti holds l_i acquires l_{i+1}): level 1
  // has 8 chains, of which t1..t7 can extend. MaxChains = 3 commits the
  // first three extensions, and the fourth *attempt* aborts the level:
  // the cut chain (t4's) and everything after it count as dropped.
  RelationBuilder B;
  for (uint64_t T = 1; T <= 8; ++T)
    B.dep(T, {10 + T}, 10 + T + 1);
  IGoodlockOptions Opts;
  Opts.MaxChains = 3;
  Opts.MaxCycleLength = 2; // one extension level, no cycles possible
  IGoodlockStats Stats;
  auto Cycles = B.run(Opts, &Stats);
  EXPECT_TRUE(Cycles.empty());
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(Stats.ChainsDropped, 5u) << "chains t4..t8 dropped at the cut";
  EXPECT_EQ(Stats.ChainsExplored, 8u + 3u) << "level 1 plus committed exts";
}

TEST(IGoodlock, MaxChainsKeepsCyclesFoundBeforeAbort) {
  // A 2-cycle discovered while scanning early chains survives a MaxChains
  // abort triggered later in the same level (cycle closes are not
  // extensions, so they never consume capacity).
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 10); // closes during the level-1 scan
  for (uint64_t T = 3; T <= 6; ++T)    // chain fodder: t3->t4->t5->t6
    B.dep(T, {20 + T}, 20 + T + 1);
  IGoodlockOptions Opts;
  Opts.MaxChains = 2;
  Opts.MaxCycleLength = 2;
  IGoodlockStats Stats;
  auto Cycles = B.run(Opts, &Stats);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(Stats.ChainsDropped, 2u);
}

TEST(IGoodlock, UnderCapNothingDropped) {
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 10);
  IGoodlockStats Stats;
  B.run({}, &Stats);
  EXPECT_FALSE(Stats.Truncated);
  EXPECT_EQ(Stats.ChainsDropped, 0u);
  EXPECT_EQ(Stats.CyclesDropped, 0u);
}

TEST(IGoodlock, CyclesDroppedCountsSuppressedReports) {
  // 20 distinct 2-cycles against MaxCycles = 5: each suppressed report is
  // counted, so campaigns can see how much the cap hid.
  RelationBuilder B;
  for (uint64_t I = 0; I != 20; ++I) {
    uint64_t L = 100 + 2 * I;
    B.dep(1 + 2 * I, {L}, L + 1).dep(2 + 2 * I, {L + 1}, L);
  }
  IGoodlockOptions Opts;
  Opts.MaxCycles = 5;
  IGoodlockStats Stats;
  auto Cycles = B.run(Opts, &Stats);
  EXPECT_EQ(Cycles.size(), 5u);
  EXPECT_TRUE(Stats.Truncated);
  EXPECT_EQ(Stats.CyclesDropped, 15u);
}

TEST(IGoodlock, StatsReportEntriesJobsAndThroughput) {
  RelationBuilder B;
  B.dep(1, {10}, 11).dep(2, {11}, 10);
  IGoodlockStats Stats;
  B.run({}, &Stats);
  EXPECT_EQ(Stats.Entries, 2u);
  EXPECT_EQ(Stats.JobsUsed, 1u) << "default is serial";
  EXPECT_GE(Stats.entriesPerSecond(), 0.0);
  EXPECT_GE(Stats.chainsPerSecond(), 0.0);

  IGoodlockOptions Opts;
  Opts.AnalysisJobs = 4;
  B.run(Opts, &Stats);
  EXPECT_EQ(Stats.JobsUsed, 4u);

  Opts.AnalysisJobs = 0; // hardware concurrency
  B.run(Opts, &Stats);
  EXPECT_GE(Stats.JobsUsed, 1u);
}

TEST(IGoodlock, WideHeldSetsPastSixtyFourLocks) {
  // More than 64 distinct locks defeats the injective bitmask fast path:
  // the folded masks of the two held sets share bits even though the sets
  // are disjoint, so the sorted-intersection fallback must decide. The
  // inversion is real and must still be reported.
  RelationBuilder B;
  std::vector<uint64_t> Held1, Held2;
  for (uint64_t I = 0; I != 40; ++I) {
    Held1.push_back(1000 + I);
    Held2.push_back(2000 + I);
  }
  Held1.push_back(10);
  Held2.push_back(11);
  B.dep(1, Held1, 11).dep(2, Held2, 10);
  auto Cycles = B.run();
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Components.size(), 2u);
}

TEST(IGoodlock, GuardLockStillSuppressesPastSixtyFourLocks) {
  // The same wide-held-set regime, but both sides hold guard lock 5: the
  // fallback must detect the genuine intersection and reject the chain.
  RelationBuilder B;
  std::vector<uint64_t> Held1, Held2;
  for (uint64_t I = 0; I != 40; ++I) {
    Held1.push_back(1000 + I);
    Held2.push_back(2000 + I);
  }
  Held1.push_back(5);
  Held1.push_back(10);
  Held2.push_back(5);
  Held2.push_back(11);
  B.dep(1, Held1, 11).dep(2, Held2, 10);
  EXPECT_TRUE(B.run().empty());
}

} // namespace
