//===- tests/StaticAnalysisTest.cpp - Guard pruner + race detector ---------===//
//
// Unit tests for the offline static-analysis passes (src/analysis): cycle
// classification on hand-built dependency logs with hand-set vector
// clocks, the KeepGuardedCycles closure switch that feeds the pruner, and
// the lockset + happens-before race detector including its determinism
// across worker counts.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuardPruner.h"
#include "analysis/RaceDetector.h"
#include "analysis/Trace.h"
#include "igoodlock/IGoodlock.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;
using namespace dlf::analysis;

// -- Log construction helpers -------------------------------------------------

/// Hand-builds a LockDependencyLog the way the runtime would: threads and
/// locks registered up front, acquires fed with explicit held stacks and
/// (optionally) clocks.
class LogBuilder {
public:
  LogBuilder &thread(uint64_t Id, VectorClock Clock = {}) {
    ThreadRecord T;
    T.Id = ThreadId(Id);
    T.Name = "t" + std::to_string(Id);
    Clocks[Id] = std::move(Clock);
    Log.onThreadCreated(T);
    return *this;
  }

  LogBuilder &lock(uint64_t Id, const std::string &Name) {
    LockRecord L;
    L.Id = LockId(Id);
    L.Name = Name;
    Log.onLockCreated(L);
    return *this;
  }

  /// Thread \p Tid acquires \p Lid while holding \p Held (in order).
  LogBuilder &acquire(uint64_t Tid, uint64_t Lid,
                      std::vector<uint64_t> Held) {
    std::vector<std::pair<uint64_t, LockMode>> HeldModes;
    for (uint64_t H : Held)
      HeldModes.emplace_back(H, LockMode::Exclusive);
    return acquire(Tid, Lid, std::move(HeldModes), LockMode::Exclusive);
  }

  /// Mode-aware variant: each held entry carries its LockMode and the
  /// acquire itself has one (rwlock read sides record Shared).
  LogBuilder &acquire(uint64_t Tid, uint64_t Lid,
                      std::vector<std::pair<uint64_t, LockMode>> Held,
                      LockMode Mode) {
    ThreadRecord T;
    T.Id = ThreadId(Tid);
    T.Clock = Clocks[Tid];
    LockRecord L;
    L.Id = LockId(Lid);
    std::vector<LockStackEntry> Stack;
    for (const auto &[H, HMode] : Held)
      Stack.push_back({LockId(H), siteOf(Tid, H), HMode});
    Log.onAcquireExecuted(T, L, Stack, siteOf(Tid, Lid), Mode);
    return *this;
  }

  const LockDependencyLog &log() const { return Log; }

private:
  /// Stable, distinct acquire sites per (thread, lock).
  static Label siteOf(uint64_t Tid, uint64_t Lid) {
    return Label::intern("t" + std::to_string(Tid) + "/acq" +
                         std::to_string(Lid));
  }

  LockDependencyLog Log;
  std::unordered_map<uint64_t, VectorClock> Clocks;
};

std::vector<AbstractCycle> closure(const LockDependencyLog &Log,
                                   bool KeepGuarded) {
  IGoodlockOptions Opts;
  Opts.KeepGuardedCycles = KeepGuarded;
  return runIGoodlock(Log, Opts);
}

/// The gate-lock pattern: t1 takes a->b, t2 takes b->a, both under g.
LogBuilder gatePattern() {
  LogBuilder B;
  B.thread(1).thread(2);
  B.lock(10, "gate").lock(11, "a").lock(12, "b");
  B.acquire(1, 11, {10}).acquire(1, 12, {10, 11});
  B.acquire(2, 12, {10}).acquire(2, 11, {10, 12});
  return B;
}

// -- Closure: KeepGuardedCycles ----------------------------------------------

TEST(KeepGuardedCycles, DefaultClosureDiscardsGuardedCycle) {
  LogBuilder B = gatePattern();
  EXPECT_EQ(closure(B.log(), false).size(), 0u)
      << "held-set disjointness must reject the gate-protected inversion";
}

TEST(KeepGuardedCycles, OptionSurfacesGuardedCycle) {
  LogBuilder B = gatePattern();
  std::vector<AbstractCycle> Cycles = closure(B.log(), true);
  ASSERT_EQ(Cycles.size(), 1u);
  EXPECT_EQ(Cycles[0].Components.size(), 2u);
}

TEST(KeepGuardedCycles, UnguardedCyclesIdenticalEitherWay) {
  LogBuilder B;
  B.thread(1).thread(2);
  B.lock(11, "a").lock(12, "b");
  B.acquire(1, 12, {11}).acquire(2, 11, {12});
  EXPECT_EQ(closure(B.log(), false).size(), 1u);
  EXPECT_EQ(closure(B.log(), true).size(), 1u);
}

// -- Closure: lock modes ------------------------------------------------------

constexpr LockMode S = LockMode::Shared;
constexpr LockMode X = LockMode::Exclusive;

/// The gate pattern with a chosen mode per hold: both threads hold the
/// gate in \p GateMode and their first table in \p TableMode when they
/// acquire the second table in \p AcqMode.
LogBuilder modedGatePattern(LockMode GateMode, LockMode TableMode,
                            LockMode AcqMode) {
  LogBuilder B;
  B.thread(1).thread(2);
  B.lock(10, "gate").lock(11, "a").lock(12, "b");
  B.acquire(1, 12, {{10, GateMode}, {11, TableMode}}, AcqMode);
  B.acquire(2, 11, {{10, GateMode}, {12, TableMode}}, AcqMode);
  return B;
}

TEST(LockModes, SharedGateSurvivesDefaultClosure) {
  // Two read-holds of the gate exclude nothing, so the held-set check must
  // NOT discard the inversion — this is the rwlock-abba shape.
  LogBuilder B = modedGatePattern(S, S, X);
  std::vector<AbstractCycle> Cycles = closure(B.log(), false);
  ASSERT_EQ(Cycles.size(), 1u)
      << "a shared-shared gate overlap is not a guard";
  EXPECT_EQ(Cycles[0].Components.size(), 2u);
}

TEST(LockModes, ExclusiveGateStillDiscarded) {
  // Same shape with the gate held exclusively: the mutex-era guard rule
  // must keep working unchanged.
  LogBuilder B = modedGatePattern(X, S, X);
  EXPECT_EQ(closure(B.log(), false).size(), 0u);
}

TEST(LockModes, ReadReadWaitEdgesFormNoCycle) {
  // Waiting for the read side of a lock that is only read-held is not a
  // wait at all: no edges, no cycle, under either closure switch.
  LogBuilder B;
  B.thread(1).thread(2);
  B.lock(11, "a").lock(12, "b");
  B.acquire(1, 12, {{11, S}}, S);
  B.acquire(2, 11, {{12, S}}, S);
  EXPECT_EQ(closure(B.log(), false).size(), 0u);
  EXPECT_EQ(closure(B.log(), true).size(), 0u);
}

TEST(LockModes, AllSharedCommonLockIsNotAGuardForPruner) {
  // The pruner's guard verdict needs mutual exclusion on the common lock;
  // read-holds on every entry provide none, so the cycle stays
  // schedulable.
  LogBuilder B = modedGatePattern(S, S, X);
  std::vector<AbstractCycle> Cycles = closure(B.log(), true);
  ASSERT_EQ(Cycles.size(), 1u);
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), Cycles);
  ASSERT_EQ(Classes.size(), 1u);
  EXPECT_EQ(Classes[0].Class, CycleClass::Schedulable);
  EXPECT_TRUE(Classes[0].schedulable());
}

TEST(LockModes, OneExclusiveHoldRestoresTheGuard) {
  // Mixed modes on the common lock: one writer among the holders is
  // enough to serialize the windows, so the guard verdict returns.
  LogBuilder B;
  B.thread(1).thread(2);
  B.lock(10, "gate").lock(11, "a").lock(12, "b");
  B.acquire(1, 12, {{10, S}, {11, X}}, X);
  B.acquire(2, 11, {{10, X}, {12, X}}, X);
  std::vector<AbstractCycle> Cycles = closure(B.log(), true);
  ASSERT_EQ(Cycles.size(), 1u);
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), Cycles);
  ASSERT_EQ(Classes.size(), 1u);
  EXPECT_EQ(Classes[0].Class, CycleClass::Guarded);
  EXPECT_EQ(Classes[0].GuardLock, "gate");
}

// -- Guard pruner -------------------------------------------------------------

TEST(GuardPruner, GuardedCycleNamedWitness) {
  LogBuilder B = gatePattern();
  std::vector<AbstractCycle> Cycles = closure(B.log(), true);
  ASSERT_EQ(Cycles.size(), 1u);
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), Cycles);
  ASSERT_EQ(Classes.size(), 1u);
  EXPECT_EQ(Classes[0].Class, CycleClass::Guarded);
  EXPECT_EQ(Classes[0].GuardLock, "gate");
  EXPECT_FALSE(Classes[0].schedulable());
  EXPECT_EQ(Classes[0].label(), "guarded (guard lock: gate)");
}

TEST(GuardPruner, PlainAbbaIsSchedulable) {
  LogBuilder B;
  B.thread(1).thread(2);
  B.lock(11, "a").lock(12, "b");
  B.acquire(1, 11, {}).acquire(1, 12, {11});
  B.acquire(2, 12, {}).acquire(2, 11, {12});
  std::vector<AbstractCycle> Cycles = closure(B.log(), true);
  ASSERT_EQ(Cycles.size(), 1u);
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), Cycles);
  EXPECT_EQ(Classes[0].Class, CycleClass::Schedulable);
  EXPECT_TRUE(Classes[0].schedulable());
  EXPECT_EQ(Classes[0].label(), "schedulable");
}

TEST(GuardPruner, ForkOrderedCycleIsHBOrdered) {
  // t1's acquires all happen before t2 even exists (fork edge): clocks
  // built exactly as the analyzer builds them from a T..F..A trace.
  VectorClock C1, C2;
  vcTick(C1, ThreadId(1)); // t1 born
  vcJoin(C2, C1);          // t2 forked from t1 (post-acquire state)
  vcTick(C2, ThreadId(2));

  LogBuilder B;
  B.thread(1, C1).thread(2, C2);
  B.lock(11, "a").lock(12, "b");
  B.acquire(1, 12, {11}); // t1: b while holding a, clock {t1:1}
  B.acquire(2, 11, {12}); // t2: a while holding b, clock {t1:1,t2:1}
  std::vector<AbstractCycle> Cycles = closure(B.log(), true);
  ASSERT_EQ(Cycles.size(), 1u);
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), Cycles);
  EXPECT_EQ(Classes[0].Class, CycleClass::HBOrdered);
  EXPECT_FALSE(Classes[0].schedulable());
}

TEST(GuardPruner, GuardVerdictBeatsHBOrder) {
  // The same cycle is both gate-protected and fork-ordered; the pruner
  // must prefer the guard verdict — it names the lock to look at.
  VectorClock C1, C2;
  vcTick(C1, ThreadId(1));
  vcJoin(C2, C1);
  vcTick(C2, ThreadId(2));

  LogBuilder B;
  B.thread(1, C1).thread(2, C2);
  B.lock(10, "gate").lock(11, "a").lock(12, "b");
  B.acquire(1, 12, {10, 11});
  B.acquire(2, 11, {10, 12});
  std::vector<AbstractCycle> Cycles = closure(B.log(), true);
  ASSERT_EQ(Cycles.size(), 1u);
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), Cycles);
  EXPECT_EQ(Classes[0].Class, CycleClass::Guarded);
  EXPECT_EQ(Classes[0].GuardLock, "gate");
}

TEST(GuardPruner, SingleThreadCycleDetected) {
  // A hand-built degenerate cycle whose components share a thread (the
  // closure itself never produces one, but deserialized cycles can).
  LogBuilder B;
  B.thread(1);
  B.lock(11, "a").lock(12, "b");
  B.acquire(1, 12, {11}).acquire(1, 11, {12});
  AbstractCycle Cycle;
  CycleComponent C1, C2;
  C1.Thread = ThreadId(1);
  C1.Lock = LockId(12);
  C2.Thread = ThreadId(1);
  C2.Lock = LockId(11);
  Cycle.Components = {C1, C2};
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), {Cycle});
  EXPECT_EQ(Classes[0].Class, CycleClass::SingleThread);
  EXPECT_FALSE(Classes[0].schedulable());
}

TEST(GuardPruner, UnmatchedComponentStaysSchedulable) {
  // A component with no witnessing entry proves nothing; the pruner must
  // fail open (schedulable) rather than discharge on missing evidence.
  LogBuilder B;
  B.thread(1).thread(2);
  B.lock(11, "a").lock(12, "b");
  B.acquire(1, 12, {11});
  AbstractCycle Cycle;
  CycleComponent C1, C2;
  C1.Thread = ThreadId(1);
  C1.Lock = LockId(12);
  C2.Thread = ThreadId(2);
  C2.Lock = LockId(99); // never acquired
  Cycle.Components = {C1, C2};
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), {Cycle});
  EXPECT_EQ(Classes[0].Class, CycleClass::Schedulable);
}

TEST(GuardPruner, MixedWitnessesStaySchedulable) {
  // One witnessing occurrence is guarded, another is not: some assignment
  // is schedulable, so the cycle must not be discharged.
  LogBuilder B;
  B.thread(1).thread(2);
  B.lock(10, "gate").lock(11, "a").lock(12, "b");
  // Guarded occurrences...
  B.acquire(1, 12, {10, 11});
  B.acquire(2, 11, {10, 12});
  // ...and bare re-occurrences of the same inversion at other sites.
  B.acquire(1, 12, {11});
  B.acquire(2, 11, {12});
  std::vector<AbstractCycle> Cycles = closure(B.log(), true);
  ASSERT_GE(Cycles.size(), 1u);
  std::vector<CycleClassification> Classes =
      classifyCycles(B.log(), Cycles);
  bool AnySchedulable = false;
  for (const CycleClassification &C : Classes)
    AnySchedulable = AnySchedulable || C.schedulable();
  EXPECT_TRUE(AnySchedulable)
      << "the unguarded occurrence pair must keep a cycle schedulable";
}

TEST(GuardPruner, ClassNamesRoundTrip) {
  for (CycleClass C :
       {CycleClass::Schedulable, CycleClass::Guarded, CycleClass::HBOrdered,
        CycleClass::SingleThread}) {
    CycleClass Back = CycleClass::Schedulable;
    ASSERT_TRUE(cycleClassFromName(cycleClassName(C), Back))
        << cycleClassName(C);
    EXPECT_EQ(Back, C);
  }
  CycleClass Out;
  EXPECT_FALSE(cycleClassFromName("bogus", Out));
  EXPECT_FALSE(cycleClassFromName("", Out));
}

// -- Race detector ------------------------------------------------------------

/// Builds trace events programmatically; mirrors interpose/TraceFormat.h.
struct TraceBuilder {
  TraceFile Trace;

  TraceBuilder &threadNew(uint64_t Tid) {
    add(TraceEvent::Kind::ThreadNew, Tid, 0, "thr#" + std::to_string(Tid));
    return *this;
  }
  TraceBuilder &fork(uint64_t Parent, uint64_t Child) {
    add(TraceEvent::Kind::Fork, Parent, Child, "");
    return *this;
  }
  TraceBuilder &lockNew(uint64_t Lid) {
    add(TraceEvent::Kind::LockNew, Lid, 0, "lock#" + std::to_string(Lid));
    return *this;
  }
  TraceBuilder &acquire(uint64_t Tid, uint64_t Lid) {
    add(TraceEvent::Kind::Acquire, Tid, Lid, "acq");
    return *this;
  }
  TraceBuilder &release(uint64_t Tid, uint64_t Lid) {
    add(TraceEvent::Kind::Release, Tid, Lid, "");
    return *this;
  }
  TraceBuilder &objectNew(uint64_t Oid) {
    add(TraceEvent::Kind::ObjectNew, Oid, 0, "obj#" + std::to_string(Oid));
    return *this;
  }
  TraceBuilder &read(uint64_t Tid, uint64_t Oid, const std::string &Site) {
    add(TraceEvent::Kind::Read, Tid, Oid, Site);
    return *this;
  }
  TraceBuilder &write(uint64_t Tid, uint64_t Oid, const std::string &Site) {
    add(TraceEvent::Kind::Write, Tid, Oid, Site);
    return *this;
  }
  TraceBuilder &notify(uint64_t Tid, uint64_t Cid) {
    add(TraceEvent::Kind::CondNotify, Tid, Cid, "");
    return *this;
  }
  TraceBuilder &wake(uint64_t Tid, uint64_t Cid) {
    add(TraceEvent::Kind::CondWake, Tid, Cid, "");
    return *this;
  }
  TraceBuilder &join(uint64_t Joiner, uint64_t Target) {
    add(TraceEvent::Kind::Join, Joiner, Target, "");
    return *this;
  }

private:
  void add(TraceEvent::Kind K, uint64_t A, uint64_t B, std::string Text) {
    TraceEvent E;
    E.K = K;
    E.A = A;
    E.B = B;
    E.Text = std::move(Text);
    Trace.Events.push_back(std::move(E));
  }
};

/// Two threads forked from a common parent, writing one object unlocked.
TraceBuilder racyPair() {
  TraceBuilder B;
  B.threadNew(1).threadNew(2).threadNew(3);
  B.fork(1, 2).fork(1, 3);
  B.objectNew(100);
  B.write(2, 100, "w2::store");
  B.write(3, 100, "w3::store");
  return B;
}

TEST(RaceDetector, ConcurrentUnlockedWritesAreRacy) {
  TraceBuilder B = racyPair();
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.ObjectsSeen, 1u);
  EXPECT_EQ(R.AccessesSeen, 2u);
  ASSERT_EQ(R.RacyPairs, 1u);
  ASSERT_EQ(R.Races.size(), 1u);
  EXPECT_EQ(R.Races[0].Object, 100u);
  EXPECT_EQ(R.Races[0].First.Site, "w2::store");
  EXPECT_EQ(R.Races[0].Second.Site, "w3::store");
}

TEST(RaceDetector, CommonLockSuppressesRace) {
  TraceBuilder B;
  B.threadNew(1).threadNew(2).threadNew(3);
  B.fork(1, 2).fork(1, 3);
  B.lockNew(50).objectNew(100);
  B.acquire(2, 50).write(2, 100, "w2::store").release(2, 50);
  B.acquire(3, 50).write(3, 100, "w3::store").release(3, 50);
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.RacyPairs, 0u);
}

TEST(RaceDetector, ReadReadIsNotARace) {
  TraceBuilder B;
  B.threadNew(1).threadNew(2).threadNew(3);
  B.fork(1, 2).fork(1, 3);
  B.objectNew(100);
  B.read(2, 100, "w2::load").read(3, 100, "w3::load");
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.RacyPairs, 0u);
}

TEST(RaceDetector, SameThreadAccessesAreNotARace) {
  TraceBuilder B;
  B.threadNew(1).objectNew(100);
  B.write(1, 100, "a").write(1, 100, "b");
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.RacyPairs, 0u);
}

TEST(RaceDetector, ForkEdgeOrdersAccesses) {
  // Parent writes, then forks the child that writes: ordered, not racy.
  TraceBuilder B;
  B.threadNew(1).objectNew(100);
  B.write(1, 100, "parent::store");
  B.threadNew(2);
  B.fork(1, 2);
  B.write(2, 100, "child::store");
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.RacyPairs, 0u);
}

TEST(RaceDetector, CondvarNotifyWakeOrdersHandoff) {
  // Writer publishes data before notifying; the reader touches it only
  // after waking from that notify. The N->V edge orders the pair.
  TraceBuilder B;
  B.threadNew(1).threadNew(2);
  B.fork(1, 2);
  B.objectNew(100).lockNew(50);
  B.write(1, 100, "writer::init");
  B.acquire(1, 50).notify(1, 7).release(1, 50);
  B.wake(2, 7);
  B.read(2, 100, "reader::consume");
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.RacyPairs, 0u)
      << "notify->wake must establish happens-before for the handoff";

  // Same accesses with the condvar events removed race: the edge is what
  // suppresses the report, not a lockset accident.
  TraceBuilder NoCv;
  NoCv.threadNew(1).threadNew(2);
  NoCv.fork(1, 2);
  NoCv.objectNew(100);
  NoCv.write(1, 100, "writer::init");
  NoCv.read(2, 100, "reader::consume");
  EXPECT_EQ(detectRaces(NoCv.Trace).RacyPairs, 1u);
}

TEST(RaceDetector, PostNotifyWriteStillRacesWithWaiter) {
  // The clock stored at notify must exclude the notifier's later steps:
  // a write performed AFTER the notify is concurrent with the waker.
  TraceBuilder B;
  B.threadNew(1).threadNew(2);
  B.fork(1, 2);
  B.objectNew(100);
  B.notify(1, 7);
  B.write(1, 100, "writer::late-store");
  B.wake(2, 7);
  B.read(2, 100, "reader::consume");
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.RacyPairs, 1u)
      << "store-then-tick: post-notify accesses stay concurrent";
}

TEST(RaceDetector, JoinEdgeOrdersPostJoinReads) {
  // Worker writes, main joins it, then reads: the J edge orders the pair.
  TraceBuilder B;
  B.threadNew(1).threadNew(2);
  B.fork(1, 2);
  B.objectNew(100);
  B.write(2, 100, "worker::result");
  B.join(1, 2);
  B.read(1, 100, "main::collect");
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.RacyPairs, 0u)
      << "pthread_join must order the worker's writes before the joiner";

  TraceBuilder NoJoin;
  NoJoin.threadNew(1).threadNew(2);
  NoJoin.fork(1, 2);
  NoJoin.objectNew(100);
  NoJoin.write(2, 100, "worker::result");
  NoJoin.read(1, 100, "main::collect");
  EXPECT_EQ(detectRaces(NoJoin.Trace).RacyPairs, 1u);
}

TEST(RaceDetector, ReleaseAcquireOrdersHandoff) {
  // Lock-mediated handoff where only ONE side still holds the lock at
  // access time would fool a pure lockset check reversed; here both sides
  // lock, so both lockset and happens-before agree: no race.
  TraceBuilder B;
  B.threadNew(1).threadNew(2).threadNew(3);
  B.fork(1, 2).fork(1, 3);
  B.lockNew(50).objectNew(100);
  B.acquire(2, 50).write(2, 100, "w2::store").release(2, 50);
  // w3 reads *outside* the lock but after acquiring/releasing it once: the
  // release->acquire edge orders the accesses, so HB suppresses what the
  // lockset alone would flag.
  B.acquire(3, 50).release(3, 50);
  B.read(3, 100, "w3::unlockedLoad");
  RaceAnalysis R = detectRaces(B.Trace);
  EXPECT_EQ(R.RacyPairs, 0u)
      << "release->acquire edge must order the unlocked read";
}

TEST(RaceDetector, WriteReadPairIsRacy) {
  TraceBuilder B;
  B.threadNew(1).threadNew(2).threadNew(3);
  B.fork(1, 2).fork(1, 3);
  B.objectNew(100);
  B.write(2, 100, "w2::store");
  B.read(3, 100, "w3::load");
  RaceAnalysis R = detectRaces(B.Trace);
  ASSERT_EQ(R.RacyPairs, 1u);
  EXPECT_TRUE(R.Races[0].First.IsWrite);
  EXPECT_FALSE(R.Races[0].Second.IsWrite);
}

TEST(RaceDetector, DeterministicAcrossJobCounts) {
  // Many objects so the round-robin sharding actually spreads work.
  TraceBuilder B;
  B.threadNew(1).threadNew(2).threadNew(3);
  B.fork(1, 2).fork(1, 3);
  for (uint64_t O = 0; O != 23; ++O) {
    B.objectNew(100 + O);
    B.write(2, 100 + O, "w2::store" + std::to_string(O));
    if (O % 3 != 0)
      B.write(3, 100 + O, "w3::store" + std::to_string(O));
  }
  std::string Baseline;
  for (unsigned Jobs : {1u, 2u, 4u, 0u}) {
    RaceDetectorOptions Opts;
    Opts.Jobs = Jobs;
    RaceAnalysis R = detectRaces(B.Trace, Opts);
    std::string Rendered;
    for (const RaceReport &Race : R.Races)
      Rendered += Race.toString() + "\n";
    Rendered += std::to_string(R.RacyPairs);
    if (Jobs == 1)
      Baseline = Rendered;
    else
      EXPECT_EQ(Rendered, Baseline) << "jobs=" << Jobs;
  }
  EXPECT_NE(Baseline, "0");
}

TEST(RaceDetector, ReportCapCountsEverything) {
  TraceBuilder B;
  B.threadNew(1).threadNew(2).threadNew(3);
  B.fork(1, 2).fork(1, 3);
  for (uint64_t O = 0; O != 8; ++O) {
    B.objectNew(100 + O);
    B.write(2, 100 + O, "w2");
    B.write(3, 100 + O, "w3");
  }
  RaceDetectorOptions Opts;
  Opts.MaxReports = 3;
  RaceAnalysis R = detectRaces(B.Trace, Opts);
  EXPECT_EQ(R.RacyPairs, 8u);
  EXPECT_EQ(R.Races.size(), 3u);
}

TEST(RaceDetector, EmptyTraceIsClean) {
  TraceFile Trace;
  RaceAnalysis R = detectRaces(Trace);
  EXPECT_EQ(R.RacyPairs, 0u);
  EXPECT_EQ(R.ObjectsSeen, 0u);
  EXPECT_EQ(R.AccessesSeen, 0u);
}

} // namespace
