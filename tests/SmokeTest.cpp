//===- tests/SmokeTest.cpp - End-to-end smoke of the two-phase pipeline ----===//
//
// Runs the paper's Figure 1 example program through Phase I (iGoodlock) and
// Phase II (DeadlockFuzzer) and checks the headline behaviour: one potential
// cycle reported, reproduced with probability 1.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

#include <memory>

namespace {

using namespace dlf;

/// The paper's Figure 1: two threads acquiring two locks in opposite
/// orders; the first thread runs "long running methods" first, so the
/// deadlock rarely happens under normal schedules.
class MyThread {
public:
  MyThread(Mutex &L1, Mutex &L2, bool Flag) : L1(L1), L2(L2), Flag(Flag) {}

  void run() {
    DLF_SCOPE("MyThread::run");
    if (Flag) {
      // Long-running methods f1..f4 (just scheduling points here).
      for (int I = 0; I != 4; ++I)
        yieldNow();
    }
    MutexGuard Outer(L1, DLF_NAMED_SITE("fig1:15"));
    MutexGuard Inner(L2, DLF_NAMED_SITE("fig1:16"));
  }

private:
  Mutex &L1;
  Mutex &L2;
  bool Flag;
};

void figure1Program() {
  Mutex O1("o1", DLF_NAMED_SITE("fig1:22"), nullptr);
  Mutex O2("o2", DLF_NAMED_SITE("fig1:23"), nullptr);
  MyThread Body1(O1, O2, /*Flag=*/true);
  MyThread Body2(O2, O1, /*Flag=*/false);
  Thread T1([&] { Body1.run(); }, "thread1", DLF_NAMED_SITE("fig1:25"));
  Thread T2([&] { Body2.run(); }, "thread2", DLF_NAMED_SITE("fig1:26"));
  T1.join();
  T2.join();
}

TEST(Smoke, Figure1PhaseOneFindsTheCycle) {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  ActiveTester Tester(figure1Program, Config);
  PhaseOneResult P1 = Tester.runPhaseOne();
  EXPECT_TRUE(P1.Exec.Completed);
  ASSERT_EQ(P1.Cycles.size(), 1u);
  EXPECT_EQ(P1.Cycles[0].Components.size(), 2u);
}

TEST(Smoke, Figure1PhaseTwoReproducesWithProbabilityOne) {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  ActiveTester Tester(figure1Program, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_EQ(Report.PerCycle.size(), 1u);
  EXPECT_EQ(Report.PerCycle[0].ReproducedTarget, Report.PerCycle[0].Runs)
      << Report.toString();
}

TEST(Smoke, Figure1PassthroughNeverDeadlocks) {
  ActiveTesterConfig Config;
  ActiveTester Tester(figure1Program, Config);
  for (int I = 0; I != 5; ++I) {
    ExecutionResult R = Tester.runPassthrough();
    EXPECT_TRUE(R.Completed);
  }
}

} // namespace
