//===- tests/SerializeTest.cpp - Cycle report (de)serialization --------------===//

#include "fuzzer/ActiveTester.h"
#include "igoodlock/Serialize.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;

void abbaProgram() {
  Mutex A("sa", DLF_SITE());
  Mutex B("sb", DLF_SITE());
  Thread T1([&] {
    for (int I = 0; I != 4; ++I)
      yieldNow();
    MutexGuard First(A, DLF_NAMED_SITE("ser:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("ser:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("ser:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("ser:t2a"));
  });
  T1.join();
  T2.join();
}

std::vector<AbstractCycle> phaseOneCycles() {
  ActiveTester Tester(abbaProgram);
  return Tester.runPhaseOne().Cycles;
}

TEST(Serialize, RoundTripPreservesKeys) {
  std::vector<AbstractCycle> Original = phaseOneCycles();
  ASSERT_EQ(Original.size(), 1u);

  std::string Text = serializeCycles(Original);
  std::vector<AbstractCycle> Loaded;
  std::string Error;
  ASSERT_TRUE(deserializeCycles(Text, Loaded, &Error)) << Error;
  ASSERT_EQ(Loaded.size(), 1u);

  for (AbstractionKind Kind :
       {AbstractionKind::Trivial, AbstractionKind::KObjectSensitive,
        AbstractionKind::ExecutionIndex}) {
    for (bool UseContext : {false, true}) {
      EXPECT_EQ(Original[0].key(Kind, UseContext),
                Loaded[0].key(Kind, UseContext))
          << abstractionKindName(Kind) << " ctx=" << UseContext;
    }
  }
  EXPECT_EQ(Loaded[0].Components[0].ThreadName,
            Original[0].Components[0].ThreadName);
  EXPECT_EQ(Loaded[0].Multiplicity, Original[0].Multiplicity);
}

TEST(Serialize, LoadedCyclesDriveAFreshPhaseTwo) {
  // The cross-process workflow: serialize, parse, fuzz. (Same process
  // here, but the loaded cycles go through label re-interning exactly as
  // a second process would.)
  std::vector<AbstractCycle> Original = phaseOneCycles();
  std::vector<AbstractCycle> Loaded;
  ASSERT_TRUE(deserializeCycles(serializeCycles(Original), Loaded));

  ActiveTester Tester(abbaProgram);
  CycleFuzzStats Stats = Tester.fuzzCycle(Loaded[0]);
  EXPECT_GT(Stats.ReproducedTarget, 0u);
}

TEST(Serialize, FileRoundTrip) {
  std::vector<AbstractCycle> Original = phaseOneCycles();
  std::string Path = std::string(::testing::TempDir()) + "/dlf_cycles.txt";
  ASSERT_TRUE(saveCyclesToFile(Path, Original));
  std::vector<AbstractCycle> Loaded;
  std::string Error;
  ASSERT_TRUE(loadCyclesFromFile(Path, Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded.size(), Original.size());
  std::remove(Path.c_str());
}

TEST(Serialize, EscapingSurvivesHostileNames) {
  AbstractCycle Cycle;
  for (int Side = 0; Side != 2; ++Side) {
    CycleComponent C;
    C.ThreadName = "weird|name%with\nnewline";
    C.LockName = "lock|%";
    C.ThreadAbs.Index.Elements = {
        Label::intern("site|with|bars%" + std::to_string(Side)).raw(), 3};
    C.LockAbs.KObject.Elements = {Label::intern("alloc%25").raw()};
    C.Context.push_back(Label::intern("ctx with spaces % and | bars"));
    C.Context.push_back(Label::intern("inner" + std::to_string(Side)));
    Cycle.Components.push_back(std::move(C));
  }
  std::vector<AbstractCycle> Out;
  std::string Error;
  ASSERT_TRUE(deserializeCycles(serializeCycles({Cycle}), Out, &Error))
      << Error;
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Components[0].ThreadName, "weird|name%with\nnewline");
  EXPECT_EQ(Out[0].key(AbstractionKind::ExecutionIndex, true),
            Cycle.key(AbstractionKind::ExecutionIndex, true));
}

TEST(Serialize, MalformedInputsAreRejected) {
  std::vector<AbstractCycle> Out;
  std::string Error;

  EXPECT_FALSE(deserializeCycles("C|a|b|1|2\n", Out, &Error))
      << "component before CYCLE must fail";
  EXPECT_FALSE(Error.empty());

  EXPECT_FALSE(deserializeCycles("CYCLE|1\nTI|x|1\n", Out, &Error))
      << "abstraction before component must fail";

  EXPECT_FALSE(deserializeCycles("CYCLE|1\nBOGUS|1\n", Out, &Error))
      << "unknown tag must fail";

  EXPECT_FALSE(deserializeCycles(
      "CYCLE|1\nC|t|l|1|2\nX|site\n", Out, &Error))
      << "single-component cycle must fail";

  EXPECT_FALSE(deserializeCycles("CYCLE|1\nC|t%G|l|1|2\nX|s\n", Out,
                                 &Error))
      << "bad escape must fail";

  // Empty document: fine, zero cycles.
  EXPECT_TRUE(deserializeCycles("# dlf cycles v1\n", Out, &Error));
  EXPECT_TRUE(Out.empty());
}

} // namespace
