//===- tests/VariantsTest.cpp - Paper §3 / Figure 2 variant behaviours -------===//
//
// The paper's worked example (§3) and the variant ablations as tests: with
// thread/object abstractions the Figure 1 deadlock is created with
// probability ~1 even with a decoy third thread; with the trivial
// abstraction the third thread gets paused by mistake and the probability
// drops (the paper computes ~0.75). Context ablation is pinned on a
// program where the same acquire site occurs under different held sets.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "substrates/BenchmarkRegistry.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

namespace {

using namespace dlf;

/// Figure 1 with the optional third thread (lines 24/27).
void figure1(bool WithThirdThread) {
  DLF_SCOPE("v3::main");
  Mutex O1("v-o1", DLF_NAMED_SITE("v3:22"));
  Mutex O2("v-o2", DLF_NAMED_SITE("v3:23"));
  Mutex O3("v-o3", DLF_NAMED_SITE("v3:24"));

  auto Body = [](Mutex &L1, Mutex &L2, bool Flag) {
    DLF_SCOPE("v3::run");
    if (Flag)
      for (int I = 0; I != 4; ++I)
        yieldNow();
    MutexGuard Outer(L1, DLF_NAMED_SITE("v3:15"));
    MutexGuard Inner(L2, DLF_NAMED_SITE("v3:16"));
  };

  Thread T1([&] { Body(O1, O2, true); }, "v3.t1", DLF_NAMED_SITE("v3:25"));
  Thread T2([&] { Body(O2, O1, false); }, "v3.t2", DLF_NAMED_SITE("v3:26"));
  if (WithThirdThread) {
    Thread T3([&] { Body(O2, O3, false); }, "v3.t3", DLF_NAMED_SITE("v3:27"));
    T3.join();
  }
  T1.join();
  T2.join();
}

double probability(bool Third, AbstractionKind Kind, unsigned Reps) {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = Reps;
  Config.Base.Kind = Kind;
  ActiveTester Tester([Third] { figure1(Third); }, Config);
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PerCycle.size(), 1u);
  return Report.PerCycle.empty() ? 0.0 : Report.PerCycle[0].probability();
}

TEST(Section3Example, TwoThreadsAlwaysReproduce) {
  EXPECT_DOUBLE_EQ(probability(false, AbstractionKind::ExecutionIndex, 20),
                   1.0);
}

TEST(Section3Example, ThirdThreadHarmlessWithAbstractions) {
  // "if we use object and thread abstractions, DEADLOCKFUZZER will never
  // pause the third thread at line 16 and it will create the real
  // deadlock with probability 1."
  EXPECT_DOUBLE_EQ(probability(true, AbstractionKind::ExecutionIndex, 20),
                   1.0);
}

TEST(Section3Example, TrivialAbstractionLosesProbability) {
  // "we will miss the deadlock with probability 0.25 (approx)" — the
  // decoy pauses at line 16 half the time and the recovery coin-flip
  // loses half of those. Allow generous slack around 0.75.
  double P = probability(true, AbstractionKind::Trivial, 60);
  EXPECT_LT(P, 0.98);
  EXPECT_GT(P, 0.4);
}

TEST(ContextAblation, SiteOnlyMatchingPausesWrongOccurrences) {
  // A helper locks (A, B) through one shared code path; the deadlock
  // exists only between the nested uses, but the same sites also execute
  // many times un-nested. With context, Phase II pauses only the nested
  // occurrences; without, every occurrence pauses and thrashing rises.
  auto Program = [] {
    DLF_SCOPE("ca::main");
    Mutex A("ca-a", DLF_SITE());
    Mutex B("ca-b", DLF_SITE());
    auto TouchB = [&](int Times) {
      for (int I = 0; I != Times; ++I) {
        MutexGuard Guard(B, DLF_NAMED_SITE("ca:touchB"));
      }
    };
    Thread T1([&] {
      DLF_SCOPE("ca::t1");
      TouchB(6); // benign occurrences of the same site
      MutexGuard Outer(A, DLF_NAMED_SITE("ca:t1outer"));
      MutexGuard Inner(B, DLF_NAMED_SITE("ca:touchB"));
    });
    Thread T2([&] {
      DLF_SCOPE("ca::t2");
      for (int I = 0; I != 3; ++I)
        yieldNow();
      MutexGuard Outer(B, DLF_NAMED_SITE("ca:t2outer"));
      MutexGuard Inner(A, DLF_NAMED_SITE("ca:t2inner"));
    });
    T1.join();
    T2.join();
  };

  auto RunWith = [&](bool UseContext) {
    ActiveTesterConfig Config;
    Config.PhaseTwoReps = 25;
    Config.Base.UseContext = UseContext;
    ActiveTester Tester(Program, Config);
    ActiveTesterReport Report = Tester.run();
    EXPECT_EQ(Report.PerCycle.size(), 1u);
    return Report;
  };

  ActiveTesterReport WithContext = RunWith(true);
  ActiveTesterReport NoContext = RunWith(false);
  // Context keeps the run clean; site-only matching pays extra pauses...
  EXPECT_GT(NoContext.PerCycle[0].TotalThrashes +
                NoContext.PerCycle[0].TotalForcedUnpauses,
            WithContext.PerCycle[0].TotalThrashes +
                WithContext.PerCycle[0].TotalForcedUnpauses);
  // ...and the wrong pauses cost probability: each benign pause risks a
  // thrash ejecting the real participant (on this program V4 usually
  // misses entirely, the paper's "reduce the effectiveness" in the large).
  EXPECT_EQ(WithContext.PerCycle[0].ReproducedTarget,
            WithContext.PerCycle[0].Runs);
  EXPECT_LT(NoContext.PerCycle[0].ReproducedTarget,
            WithContext.PerCycle[0].ReproducedTarget);
}

TEST(YieldAblation, GateBenchmarksNeedYields) {
  // Aggregate check mirroring Figure 2's V5 bars on the gate-lock
  // substrates: identical configuration except UseYields.
  auto ProbabilityFor = [&](bool UseYields) {
    ActiveTesterConfig Config;
    Config.PhaseTwoReps = 15;
    Config.Base.UseYields = UseYields;
    const BenchmarkInfo *Info = findBenchmark("dbcp");
    ActiveTester Tester(Info->Entry, Config);
    ActiveTesterReport Report = Tester.run();
    unsigned Hits = 0, Runs = 0;
    for (const CycleFuzzStats &S : Report.PerCycle) {
      Hits += S.ReproducedTarget;
      Runs += S.Runs;
    }
    return Runs ? static_cast<double>(Hits) / Runs : 0.0;
  };
  double WithYields = ProbabilityFor(true);
  double NoYields = ProbabilityFor(false);
  EXPECT_GT(WithYields, NoYields + 0.2)
      << "yields=" << WithYields << " no-yields=" << NoYields;
}

} // namespace
