//===- tests/AnalysisTest.cpp - Report / CycleSpec / checker / tester --------===//
//
// Unit tests for the analysis value types: abstract-cycle canonical keys,
// Phase II matching (CycleSpec), Algorithm 4 (findRealDeadlock), and the
// ActiveTester's witness matching and forked-execution helper.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/CycleSpec.h"
#include "fuzzer/RealDeadlockChecker.h"
#include "igoodlock/Report.h"

#include <gtest/gtest.h>

#include <unistd.h>

namespace {

using namespace dlf;

// -- Helpers ------------------------------------------------------------------

AbstractionSet abs(uint32_t Tag) {
  AbstractionSet Set;
  Set.Index.Elements = {Tag, 1};
  Set.KObject.Elements = {Tag};
  return Set;
}

CycleComponent component(uint64_t Thread, uint32_t ThreadTag, uint64_t Lock,
                         uint32_t LockTag,
                         std::initializer_list<const char *> Ctx) {
  CycleComponent C;
  C.Thread = ThreadId(Thread);
  C.ThreadName = "t" + std::to_string(Thread);
  C.ThreadAbs = abs(ThreadTag);
  C.Lock = LockId(Lock);
  C.LockName = "l" + std::to_string(Lock);
  C.LockAbs = abs(LockTag);
  for (const char *Site : Ctx)
    C.Context.push_back(Label::intern(Site));
  return C;
}

AbstractCycle twoCycle() {
  AbstractCycle Cycle;
  Cycle.Components.push_back(component(1, 100, 11, 200, {"an:o1", "an:i1"}));
  Cycle.Components.push_back(component(2, 101, 10, 201, {"an:o2", "an:i2"}));
  return Cycle;
}

// -- AbstractCycle keys ----------------------------------------------------------

TEST(AbstractCycleKey, RotationInvariant) {
  AbstractCycle Cycle = twoCycle();
  AbstractCycle Rotated;
  Rotated.Components = {Cycle.Components[1], Cycle.Components[0]};
  EXPECT_EQ(Cycle.key(AbstractionKind::ExecutionIndex, true),
            Rotated.key(AbstractionKind::ExecutionIndex, true));
}

TEST(AbstractCycleKey, SensitiveToAbstractions) {
  AbstractCycle A = twoCycle();
  AbstractCycle B = twoCycle();
  B.Components[0].LockAbs = abs(999);
  EXPECT_NE(A.key(AbstractionKind::ExecutionIndex, true),
            B.key(AbstractionKind::ExecutionIndex, true));
  // ...but a trivial-abstraction key ignores the difference.
  EXPECT_EQ(A.key(AbstractionKind::Trivial, true),
            B.key(AbstractionKind::Trivial, true));
}

TEST(AbstractCycleKey, ContextToggle) {
  AbstractCycle A = twoCycle();
  AbstractCycle B = twoCycle();
  B.Components[0].Context[0] = Label::intern("an:other-outer");
  EXPECT_NE(A.key(AbstractionKind::ExecutionIndex, true),
            B.key(AbstractionKind::ExecutionIndex, true));
  // Without context matching, only the final acquire site matters.
  EXPECT_EQ(A.key(AbstractionKind::ExecutionIndex, false),
            B.key(AbstractionKind::ExecutionIndex, false));
}

TEST(AbstractCycleKey, ThreeCycleRotations) {
  AbstractCycle Cycle;
  Cycle.Components.push_back(component(1, 1, 10, 10, {"c:a"}));
  Cycle.Components.push_back(component(2, 2, 11, 11, {"c:b"}));
  Cycle.Components.push_back(component(3, 3, 12, 12, {"c:c"}));
  std::string Key = Cycle.key(AbstractionKind::ExecutionIndex, true);
  for (int Rot = 0; Rot != 3; ++Rot) {
    std::rotate(Cycle.Components.begin(), Cycle.Components.begin() + 1,
                Cycle.Components.end());
    EXPECT_EQ(Cycle.key(AbstractionKind::ExecutionIndex, true), Key);
  }
  // A reflection is a *different* cycle (direction matters).
  AbstractCycle Reflected;
  Reflected.Components = {Cycle.Components[2], Cycle.Components[1],
                          Cycle.Components[0]};
  EXPECT_NE(Reflected.key(AbstractionKind::ExecutionIndex, true), Key);
}

TEST(AbstractCycleToString, MentionsEverything) {
  std::string Text = twoCycle().toString();
  EXPECT_NE(Text.find("t1"), std::string::npos);
  EXPECT_NE(Text.find("l10"), std::string::npos);
  EXPECT_NE(Text.find("an:i2"), std::string::npos);
  EXPECT_NE(Text.find("length 2"), std::string::npos);
}

// -- CycleSpec matching -----------------------------------------------------------

std::vector<LockStackEntry> stack(std::initializer_list<const char *> Sites) {
  std::vector<LockStackEntry> Result;
  uint64_t Lock = 1;
  for (const char *Site : Sites)
    Result.push_back({LockId(Lock++), Label::intern(Site)});
  return Result;
}

TEST(CycleSpec, ExactComponentMatch) {
  CycleSpec Spec(twoCycle(), AbstractionKind::ExecutionIndex, true);
  EXPECT_TRUE(
      Spec.matchesComponent(abs(100), abs(200), stack({"an:o1", "an:i1"})));
  EXPECT_TRUE(
      Spec.matchesComponent(abs(101), abs(201), stack({"an:o2", "an:i2"})));
}

TEST(CycleSpec, WrongAbstractionNoMatch) {
  CycleSpec Spec(twoCycle(), AbstractionKind::ExecutionIndex, true);
  EXPECT_FALSE(
      Spec.matchesComponent(abs(999), abs(200), stack({"an:o1", "an:i1"})));
  EXPECT_FALSE(
      Spec.matchesComponent(abs(100), abs(999), stack({"an:o1", "an:i1"})));
}

TEST(CycleSpec, WrongContextNoMatch) {
  CycleSpec Spec(twoCycle(), AbstractionKind::ExecutionIndex, true);
  EXPECT_FALSE(Spec.matchesComponent(abs(100), abs(200),
                                     stack({"an:other", "an:i1"})));
  EXPECT_FALSE(Spec.matchesComponent(
      abs(100), abs(200), stack({"an:x", "an:o1", "an:i1"})))
      << "extra outer lock changes the context";
}

TEST(CycleSpec, NoContextMatchesOnPendingSiteOnly) {
  CycleSpec Spec(twoCycle(), AbstractionKind::ExecutionIndex, false);
  EXPECT_TRUE(Spec.matchesComponent(abs(100), abs(200),
                                    stack({"an:x", "an:y", "an:i1"})));
  EXPECT_FALSE(
      Spec.matchesComponent(abs(100), abs(200), stack({"an:x", "an:o1"})));
}

TEST(CycleSpec, TrivialKindMatchesAnyObjects) {
  CycleSpec Spec(twoCycle(), AbstractionKind::Trivial, true);
  // Any thread/lock with the right context matches: the paper's "ignore
  // abstraction" variant pauses unrelated threads.
  EXPECT_TRUE(
      Spec.matchesComponent(abs(777), abs(888), stack({"an:o1", "an:i1"})));
}

TEST(CycleSpec, YieldPointMatchesOutermostContextSite) {
  CycleSpec Spec(twoCycle(), AbstractionKind::ExecutionIndex, true);
  EXPECT_TRUE(Spec.matchesYieldPoint(abs(100), Label::intern("an:o1")));
  EXPECT_FALSE(Spec.matchesYieldPoint(abs(100), Label::intern("an:i1")))
      << "yield is before the *bottommost* acquire only";
  EXPECT_FALSE(Spec.matchesYieldPoint(abs(999), Label::intern("an:o1")));
}

// -- findRealDeadlock (Algorithm 4) --------------------------------------------------

struct CheckerFixture {
  std::vector<ThreadRecord> Threads;
  std::vector<LockRecord> Locks;
  std::vector<std::vector<LockStackEntry>> Stacks;

  CheckerFixture(size_t ThreadCount, size_t LockCount) {
    Threads.resize(ThreadCount);
    for (size_t I = 0; I != ThreadCount; ++I) {
      Threads[I].Id = ThreadId(I + 1);
      Threads[I].Name = "t" + std::to_string(I + 1);
    }
    Locks.resize(LockCount);
    for (size_t I = 0; I != LockCount; ++I) {
      Locks[I].Id = LockId(I + 1);
      Locks[I].Name = "l" + std::to_string(I + 1);
    }
    Stacks.resize(ThreadCount);
  }

  void hold(size_t Thread, size_t Lock, const char *Site) {
    Stacks[Thread].push_back({LockId(Lock + 1), Label::intern(Site)});
  }

  std::optional<DeadlockWitness> check() {
    std::vector<ThreadStackView> Views;
    for (size_t I = 0; I != Threads.size(); ++I)
      Views.push_back({&Threads[I], &Stacks[I]});
    return findRealDeadlock(
        Views, [&](LockId Id) -> const LockRecord & {
          return Locks[Id.Raw - 1];
        });
  }
};

TEST(RealDeadlockChecker, FindsAbba) {
  CheckerFixture F(2, 2);
  F.hold(0, 0, "ck:t1a");
  F.hold(0, 1, "ck:t1b"); // t1: A then B (pending)
  F.hold(1, 1, "ck:t2b");
  F.hold(1, 0, "ck:t2a"); // t2: B then A (pending)
  auto Witness = F.check();
  ASSERT_TRUE(Witness.has_value());
  EXPECT_EQ(Witness->Edges.size(), 2u);
  // Edge contexts include everything up to the wait entry.
  EXPECT_EQ(Witness->Edges[0].Context.size(), 2u);
}

TEST(RealDeadlockChecker, NoCycleWithoutInversion) {
  CheckerFixture F(2, 2);
  F.hold(0, 0, "ck:a");
  F.hold(0, 1, "ck:b");
  F.hold(1, 0, "ck:a2"); // same order
  EXPECT_FALSE(F.check().has_value());
}

TEST(RealDeadlockChecker, SingleThreadNeverDeadlocks) {
  CheckerFixture F(1, 3);
  F.hold(0, 0, "ck:x");
  F.hold(0, 1, "ck:y");
  F.hold(0, 2, "ck:z");
  EXPECT_FALSE(F.check().has_value());
}

TEST(RealDeadlockChecker, ThreeWayCycle) {
  CheckerFixture F(3, 3);
  F.hold(0, 0, "ck:1a");
  F.hold(0, 1, "ck:1b");
  F.hold(1, 1, "ck:2b");
  F.hold(1, 2, "ck:2c");
  F.hold(2, 2, "ck:3c");
  F.hold(2, 0, "ck:3a");
  auto Witness = F.check();
  ASSERT_TRUE(Witness.has_value());
  EXPECT_EQ(Witness->Edges.size(), 3u);
}

TEST(RealDeadlockChecker, PartialCycleIsNotEnough) {
  CheckerFixture F(3, 3);
  F.hold(0, 0, "ck:1a");
  F.hold(0, 1, "ck:1b");
  F.hold(1, 1, "ck:2b");
  F.hold(1, 2, "ck:2c");
  // third thread holds only one lock: no closing edge
  F.hold(2, 2, "ck:3c");
  EXPECT_FALSE(F.check().has_value());
}

TEST(RealDeadlockChecker, DeepStacksWithInnerCycle) {
  // The inverted pair sits under unrelated outer locks.
  CheckerFixture F(2, 4);
  F.hold(0, 2, "ck:outer1");
  F.hold(0, 0, "ck:t1a");
  F.hold(0, 1, "ck:t1b");
  F.hold(1, 3, "ck:outer2");
  F.hold(1, 1, "ck:t2b");
  F.hold(1, 0, "ck:t2a");
  auto Witness = F.check();
  ASSERT_TRUE(Witness.has_value());
  EXPECT_EQ(Witness->Edges.size(), 2u);
}

TEST(RealDeadlockChecker, EmptyViews) {
  CheckerFixture F(0, 0);
  EXPECT_FALSE(F.check().has_value());
}

// -- ActiveTester helpers -------------------------------------------------------------

TEST(WitnessMatching, MatchesRotatedWitness) {
  AbstractCycle Cycle = twoCycle();
  DeadlockWitness Witness;
  for (int Rot : {1, 0}) { // rotated order relative to the cycle
    const CycleComponent &C = Cycle.Components[static_cast<size_t>(Rot)];
    DeadlockWitness::Edge E;
    E.Thread = C.Thread;
    E.ThreadName = C.ThreadName;
    E.ThreadAbs = C.ThreadAbs;
    E.WaitLock = C.Lock;
    E.WaitLockName = C.LockName;
    E.WaitLockAbs = C.LockAbs;
    E.WaitSite = C.Context.back();
    E.Context = C.Context;
    Witness.Edges.push_back(std::move(E));
  }
  EXPECT_TRUE(ActiveTester::witnessMatchesCycle(
      Witness, Cycle, AbstractionKind::ExecutionIndex, true));
  // Breaking one lock abstraction breaks the match.
  Witness.Edges[0].WaitLockAbs = abs(12345);
  EXPECT_FALSE(ActiveTester::witnessMatchesCycle(
      Witness, Cycle, AbstractionKind::ExecutionIndex, true));
}

TEST(WitnessMatching, SizeMismatchNeverMatches) {
  AbstractCycle Cycle = twoCycle();
  DeadlockWitness Witness;
  Witness.Edges.resize(3);
  EXPECT_FALSE(ActiveTester::witnessMatchesCycle(
      Witness, Cycle, AbstractionKind::Trivial, false));
}

TEST(ForkedRun, Completed) {
  double WallMs = -1;
  EXPECT_EQ(runForkedWithTimeout([] {}, 2000, &WallMs),
            ForkedOutcome::Completed);
  EXPECT_GE(WallMs, 0.0);
}

TEST(ForkedRun, HungChildIsKilled) {
  EXPECT_EQ(runForkedWithTimeout(
                [] {
                  for (;;)
                    usleep(1000);
                },
                /*TimeoutMs=*/200),
            ForkedOutcome::Hung);
}

TEST(ForkedRun, CrashIsReported) {
  EXPECT_EQ(runForkedWithTimeout([] { _exit(3); }, 2000),
            ForkedOutcome::Crashed);
}

} // namespace
