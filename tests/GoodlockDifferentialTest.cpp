//===- tests/GoodlockDifferentialTest.cpp - iGoodlock ≡ classic Goodlock ------===//
//
// The paper's §2.2 equivalence claim — iGoodlock "reports the same
// deadlocks as the existing algorithms" — checked by differential testing:
// the iterative closure and the DFS lock-graph baseline must produce
// identical abstract-cycle multisets on every benchmark substrate and on
// randomly generated dependency relations.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "igoodlock/ClassicGoodlock.h"
#include "igoodlock/IGoodlock.h"
#include "substrates/BenchmarkRegistry.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace {

using namespace dlf;

/// Canonical (key -> multiplicity) view of a cycle list.
std::map<std::string, unsigned>
cycleMultiset(const std::vector<AbstractCycle> &Cycles) {
  std::map<std::string, unsigned> Result;
  for (const AbstractCycle &Cycle : Cycles)
    Result[Cycle.key(AbstractionKind::ExecutionIndex, true)] +=
        Cycle.Multiplicity;
  return Result;
}

void expectEquivalent(const LockDependencyLog &Log,
                      const IGoodlockOptions &Opts = {}) {
  IGoodlockStats IterStats;
  ClassicGoodlockStats DfsStats;
  auto Iterative = runIGoodlock(Log, Opts, &IterStats);
  auto Classic = runClassicGoodlock(Log, Opts, &DfsStats);
  EXPECT_EQ(cycleMultiset(Iterative), cycleMultiset(Classic));
  EXPECT_EQ(Iterative.size(), Classic.size());
}

// -- Substrates --------------------------------------------------------------

class SubstrateDifferential : public ::testing::TestWithParam<const char *> {};

TEST_P(SubstrateDifferential, SameCyclesOnPhaseOneLog) {
  const BenchmarkInfo *Info = findBenchmark(GetParam());
  ASSERT_NE(Info, nullptr);
  ActiveTester Tester(Info->Entry);
  PhaseOneResult P1 = Tester.runPhaseOne();
  expectEquivalent(P1.Log);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, SubstrateDifferential,
                         ::testing::Values("logging", "dbcp", "swing",
                                           "jigsaw", "collections-lists",
                                           "collections-maps", "hedc",
                                           "jspider"));

// -- Random relations -----------------------------------------------------------

class RandomRelationDifferential : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RandomRelationDifferential, SameCyclesOnGeneratedRelations) {
  Rng R(GetParam() * 97 + 13);
  constexpr unsigned Threads = 7, Locks = 7, Entries = 30;

  LockDependencyLog Log;
  for (unsigned I = 0; I != Entries; ++I) {
    uint64_t Tid = 1 + R.nextBelow(Threads);
    ThreadRecord T;
    T.Id = ThreadId(Tid);
    T.Name = "t" + std::to_string(Tid);
    T.Abs.Index.Elements = {static_cast<uint32_t>(Tid), 1};
    Log.onThreadCreated(T);

    unsigned HeldCount = 1 + static_cast<unsigned>(R.nextBelow(3));
    std::set<uint64_t> Held;
    while (Held.size() < HeldCount)
      Held.insert(1 + R.nextBelow(Locks));
    uint64_t Acq;
    do {
      Acq = 1 + R.nextBelow(Locks);
    } while (Held.count(Acq));

    std::vector<LockStackEntry> Stack;
    for (uint64_t H : Held) {
      LockRecord L;
      L.Id = LockId(H);
      L.Name = "l" + std::to_string(H);
      L.Abs.Index.Elements = {static_cast<uint32_t>(H)};
      Log.onLockCreated(L);
      Stack.push_back({LockId(H), Label::intern("gd:" + std::to_string(H))});
    }
    LockRecord Acquired;
    Acquired.Id = LockId(Acq);
    Acquired.Name = "l" + std::to_string(Acq);
    Acquired.Abs.Index.Elements = {static_cast<uint32_t>(Acq)};
    Log.onLockCreated(Acquired);
    Log.onAcquireExecuted(T, Acquired, Stack,
                          Label::intern("gd:" + std::to_string(Acq)),
                          LockMode::Exclusive);
  }

  IGoodlockOptions Opts;
  Opts.MaxCycleLength = 5;
  expectEquivalent(Log, Opts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRelationDifferential,
                         ::testing::Range<uint64_t>(1, 25));

// -- The memory/runtime trade ------------------------------------------------------

TEST(GoodlockTrade, DfsKeepsOneChainIterativeMaterializesLevels) {
  // Build a relation with a long ring: the DFS's peak live state is its
  // depth; the closure's materialized chain count is far larger.
  LockDependencyLog Log;
  constexpr uint64_t N = 8;
  for (uint64_t T = 1; T <= N; ++T) {
    ThreadRecord Rec;
    Rec.Id = ThreadId(T);
    Log.onThreadCreated(Rec);
    LockRecord Held, Acq;
    Held.Id = LockId(T);
    Acq.Id = LockId((T % N) + 1);
    Log.onLockCreated(Held);
    Log.onLockCreated(Acq);
    std::vector<LockStackEntry> Stack = {
        {Held.Id, Label::intern("ring:" + std::to_string(T))}};
    Log.onAcquireExecuted(Rec, Acq, Stack,
                          Label::intern("ring:a" + std::to_string(T)),
                          LockMode::Exclusive);
  }
  IGoodlockOptions Opts;
  Opts.MaxCycleLength = N;

  IGoodlockStats IterStats;
  ClassicGoodlockStats DfsStats;
  auto Iterative = runIGoodlock(Log, Opts, &IterStats);
  auto Classic = runClassicGoodlock(Log, Opts, &DfsStats);
  ASSERT_EQ(Iterative.size(), 1u);
  ASSERT_EQ(Classic.size(), 1u);

  EXPECT_EQ(DfsStats.PeakDepth, static_cast<size_t>(N - 1))
      << "DFS memory is one chain deep";
  EXPECT_GT(IterStats.ChainsExplored, DfsStats.PeakDepth)
      << "the closure materializes whole levels";
}

} // namespace
