//===- tests/PredictTest.cpp - Sync-preserving deadlock prediction --------===//
//
// Unit and agreement tests for the --predict engine (analysis/Predict):
// verdicts on hand-built traces covering every discharge reason, the
// store-then-tick condvar clock discipline, the irregular-trace fallback,
// byte-identical reports across job counts, and cross-engine agreement
// with iGoodlock and the guard pruner on randomized traces.
//
//===----------------------------------------------------------------------===//

#include "analysis/LogBuilder.h"
#include "analysis/Predict.h"
#include "analysis/Trace.h"
#include "igoodlock/IGoodlock.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace dlf;
using namespace dlf::analysis;

// -- Trace construction -------------------------------------------------------

/// Builds trace events programmatically; mirrors interpose/TraceFormat.h.
/// Events are appended in program order — the builder is the schedule.
struct TB {
  TraceFile Trace;

  TB &thread(uint64_t Tid) {
    return add(TraceEvent::Kind::ThreadNew, Tid, 0,
               "thr#" + std::to_string(Tid));
  }
  TB &fork(uint64_t Parent, uint64_t Child) {
    return add(TraceEvent::Kind::Fork, Parent, Child, "");
  }
  TB &join(uint64_t Joiner, uint64_t Target) {
    return add(TraceEvent::Kind::Join, Joiner, Target, "");
  }
  TB &lock(uint64_t Lid, const std::string &Name) {
    return add(TraceEvent::Kind::LockNew, Lid, 0, Name);
  }
  TB &acq(uint64_t Tid, uint64_t Lid) {
    return add(TraceEvent::Kind::Acquire, Tid, Lid,
               "t" + std::to_string(Tid) + "/acq" + std::to_string(Lid));
  }
  TB &rel(uint64_t Tid, uint64_t Lid) {
    return add(TraceEvent::Kind::Release, Tid, Lid, "");
  }
  TB &notify(uint64_t Tid, uint64_t Cid) {
    return add(TraceEvent::Kind::CondNotify, Tid, Cid, "");
  }
  TB &wake(uint64_t Tid, uint64_t Cid) {
    return add(TraceEvent::Kind::CondWake, Tid, Cid, "");
  }

  TB &add(TraceEvent::Kind K, uint64_t A, uint64_t B, std::string Text) {
    TraceEvent E;
    E.K = K;
    E.A = A;
    E.B = B;
    E.Text = std::move(Text);
    Trace.Events.push_back(std::move(E));
    return *this;
  }
};

/// Two sibling workers inverting locks a/b, run back to back: never
/// deadlocks as traced, but the inversion is realizable (classic ABBA).
TB sequentialAbba() {
  TB B;
  B.thread(1).thread(2).thread(3).fork(1, 2).fork(1, 3);
  B.lock(10, "a").lock(11, "b");
  B.acq(2, 10).acq(2, 11).rel(2, 11).rel(2, 10);
  B.acq(3, 11).acq(3, 10).rel(3, 10).rel(3, 11);
  return B;
}

// -- Verdicts on hand-built traces -------------------------------------------

TEST(Predict, SequentialAbbaIsPredictedSound) {
  TB B = sequentialAbba();
  PredictAnalysis R = predictDeadlocks(B.Trace);
  ASSERT_EQ(R.Cycles.size(), 1u);
  ASSERT_EQ(R.Predictions.size(), 1u);
  EXPECT_TRUE(R.Predictions[0].sound()) << R.Predictions[0].label();
  EXPECT_GT(R.Predictions[0].WitnessEvents, 0u);
  EXPECT_EQ(R.soundCount(), 1u);
}

TEST(Predict, GateLockDischargesAsGuarded) {
  TB B;
  B.thread(1).thread(2).thread(3).fork(1, 2).fork(1, 3);
  B.lock(9, "gate").lock(10, "a").lock(11, "b");
  B.acq(2, 9).acq(2, 10).acq(2, 11).rel(2, 11).rel(2, 10).rel(2, 9);
  B.acq(3, 9).acq(3, 11).acq(3, 10).rel(3, 10).rel(3, 11).rel(3, 9);
  PredictAnalysis R = predictDeadlocks(B.Trace);
  ASSERT_EQ(R.Predictions.size(), 1u);
  EXPECT_FALSE(R.Predictions[0].sound());
  EXPECT_EQ(R.Predictions[0].Reason.rfind("guarded", 0), 0u)
      << R.Predictions[0].Reason;
  EXPECT_NE(R.Predictions[0].Reason.find("gate"), std::string::npos)
      << "the discharge must name the guard lock";

  // Agreement with the pruner's own discharge: the default closure (no
  // KeepGuardedCycles) drops the cycle entirely.
  IncrementalLogBuilder Builder(nullptr);
  Builder.feed(B.Trace.Events);
  EXPECT_EQ(runIGoodlock(Builder.log()).size(), 0u);
}

TEST(Predict, ForkOrderDischargesAsHbOrdered) {
  // The parent finishes its a->b section before forking the child that
  // inverts: the fork edge is a must-order, so the cycle is infeasible.
  TB B;
  B.thread(1).lock(10, "a").lock(11, "b");
  B.acq(1, 10).acq(1, 11).rel(1, 11).rel(1, 10);
  B.thread(2).fork(1, 2);
  B.acq(2, 11).acq(2, 10).rel(2, 10).rel(2, 11);
  PredictAnalysis R = predictDeadlocks(B.Trace);
  ASSERT_EQ(R.Predictions.size(), 1u);
  EXPECT_FALSE(R.Predictions[0].sound());
  EXPECT_EQ(R.Predictions[0].Reason, "hb-ordered");
}

TEST(Predict, JoinEdgeDischargesAsHbOrdered) {
  // t2 only starts after joining t3: join is a must-order edge, so the
  // sibling-style inversion is infeasible despite concurrent fork clocks.
  TB B;
  B.thread(1).thread(2).thread(3).fork(1, 2).fork(1, 3);
  B.lock(10, "a").lock(11, "b");
  B.acq(3, 11).acq(3, 10).rel(3, 10).rel(3, 11);
  B.join(2, 3);
  B.acq(2, 10).acq(2, 11).rel(2, 11).rel(2, 10);
  PredictAnalysis R = predictDeadlocks(B.Trace);
  ASSERT_EQ(R.Predictions.size(), 1u);
  EXPECT_FALSE(R.Predictions[0].sound());
  EXPECT_EQ(R.Predictions[0].Reason, "hb-ordered");
}

TEST(Predict, SameLockSectionOrderLimitsToSyncOrder) {
  // dbcp shape: t3's complete a-section precedes its request but follows
  // t2's a-acquire in trace order. Sync-preservation cannot close t2's
  // section (t2 must keep holding a for the deadlock), so no witness
  // exists from this trace — the engine's documented completeness limit.
  TB B;
  B.thread(1).thread(2).thread(3).fork(1, 2).fork(1, 3);
  B.lock(10, "a").lock(11, "b");
  B.acq(2, 10).acq(2, 11).rel(2, 11).rel(2, 10);
  B.acq(3, 10).rel(3, 10).acq(3, 11).acq(3, 10).rel(3, 10).rel(3, 11);
  PredictAnalysis R = predictDeadlocks(B.Trace);
  ASSERT_EQ(R.Predictions.size(), 1u);
  EXPECT_FALSE(R.Predictions[0].sound());
  EXPECT_EQ(R.Predictions[0].Reason, "sync-order");
}

TEST(Predict, CondvarHandoffCycleStaysSound) {
  // condvar-hybrid shape: the flusher's request side sits after a wakeup
  // whose notify the producer issued BEFORE taking its own cycle locks.
  // With the store-then-tick notify discipline the producer's post-notify
  // acquires stay concurrent with the flusher's post-wake acquires and the
  // cycle is realizable; tick-then-store would falsely discharge it as
  // hb-ordered (the regression this test pins).
  TB B;
  B.thread(1).thread(2).thread(3).fork(1, 2).fork(1, 3);
  B.lock(10, "state").lock(11, "journal");
  B.acq(2, 10).rel(2, 10);               // flusher enters wait (releases)
  B.acq(3, 10).notify(3, 7).rel(3, 10);  // producer signals under state
  B.wake(2, 7);
  B.acq(2, 10).acq(2, 11).rel(2, 11).rel(2, 10); // reacquire, then journal
  B.acq(3, 11).acq(3, 10).rel(3, 10).rel(3, 11); // journal, then state
  PredictAnalysis R = predictDeadlocks(B.Trace);
  ASSERT_EQ(R.Predictions.size(), 1u);
  EXPECT_TRUE(R.Predictions[0].sound()) << R.Predictions[0].label();
  // The witness must carry the wakeup's cause: producer prefix through the
  // notify plus both fork edges, not just the four cycle acquires.
  EXPECT_GE(R.Predictions[0].WitnessEvents, 8u);
}

TEST(Predict, JoinRuleForcesJoinedThreadIntoWitness) {
  // t2 joins helper t4 before requesting: the witness must absorb t4's
  // whole event list (the closure's join rule), and the cycle stays sound.
  TB B;
  B.thread(1).thread(2).thread(3).thread(4);
  B.fork(1, 2).fork(1, 3).fork(1, 4);
  B.lock(10, "a").lock(11, "b").lock(12, "scratch");
  B.acq(4, 12).rel(4, 12);
  B.join(2, 4);
  B.acq(2, 10).acq(2, 11).rel(2, 11).rel(2, 10);
  B.acq(3, 11).acq(3, 10).rel(3, 10).rel(3, 11);
  TB NoHelper = sequentialAbba();
  PredictAnalysis R = predictDeadlocks(B.Trace);
  PredictAnalysis Base = predictDeadlocks(NoHelper.Trace);
  ASSERT_EQ(R.Predictions.size(), 1u);
  ASSERT_EQ(Base.Predictions.size(), 1u);
  EXPECT_TRUE(R.Predictions[0].sound()) << R.Predictions[0].label();
  EXPECT_GT(R.Predictions[0].WitnessEvents, Base.Predictions[0].WitnessEvents)
      << "joining t4 must pull its events into the witness";
}

TEST(Predict, OverlappingSectionsFallBackConservative) {
  // Appending an (illegal) overlap of two a-sections marks the lock
  // irregular: the grant-order invariant the witness replay relies on is
  // gone, so the engine must refuse to certify, not guess.
  TB B = sequentialAbba();
  B.thread(4).thread(5).fork(1, 4).fork(1, 5);
  B.acq(4, 10).acq(5, 10).rel(4, 10).rel(5, 10);
  PredictAnalysis R = predictDeadlocks(B.Trace);
  ASSERT_EQ(R.Predictions.size(), 1u);
  EXPECT_FALSE(R.Predictions[0].sound())
      << "irregular traces must stay unconfirmed: "
      << R.Predictions[0].label();
}

TEST(Predict, VerdictNamesRoundTrip) {
  for (PredictVerdict V : {PredictVerdict::Sound, PredictVerdict::Unconfirmed}) {
    PredictVerdict Back = PredictVerdict::Sound;
    ASSERT_TRUE(predictVerdictFromName(predictVerdictName(V), Back));
    EXPECT_EQ(Back, V);
  }
  PredictVerdict Out;
  EXPECT_FALSE(predictVerdictFromName("bogus", Out));
  EXPECT_FALSE(predictVerdictFromName("", Out));
}

TEST(Predict, LabelsAreReportShaped) {
  CyclePrediction P;
  P.Verdict = PredictVerdict::Sound;
  P.WitnessEvents = 6;
  EXPECT_EQ(P.label(), "PREDICTED-SOUND (witness: 6 events)");
  P.Verdict = PredictVerdict::Unconfirmed;
  P.Reason = "sync-order";
  EXPECT_EQ(P.label(), "UNCONFIRMED (sync-order)");
  P.Reason.clear();
  EXPECT_EQ(P.label(), "UNCONFIRMED (no-witness)");
}

// -- Determinism across job counts -------------------------------------------

/// Several independent inversions so the cycle list is worth sharding.
TB multiCycleTrace() {
  TB B;
  B.thread(1);
  for (uint64_t T = 2; T <= 7; ++T)
    B.thread(T).fork(1, T);
  B.lock(10, "a").lock(11, "b").lock(20, "c").lock(21, "d").lock(19, "gate");
  B.acq(2, 10).acq(2, 11).rel(2, 11).rel(2, 10);
  B.acq(3, 11).acq(3, 10).rel(3, 10).rel(3, 11);
  B.acq(4, 20).acq(4, 21).rel(4, 21).rel(4, 20);
  B.acq(5, 21).acq(5, 20).rel(5, 20).rel(5, 21);
  B.acq(6, 19).acq(6, 10).acq(6, 21).rel(6, 21).rel(6, 10).rel(6, 19);
  B.acq(7, 19).acq(7, 21).acq(7, 10).rel(7, 10).rel(7, 21).rel(7, 19);
  return B;
}

TEST(Predict, ReportIsByteIdenticalAcrossJobs) {
  TB B = multiCycleTrace();
  std::string Baseline;
  for (unsigned Jobs : {1u, 2u, 4u, 0u}) {
    IGoodlockOptions Closure;
    Closure.AnalysisJobs = Jobs;
    PredictOptions Opts;
    Opts.Jobs = Jobs;
    PredictAnalysis R = predictDeadlocks(B.Trace, Closure, Opts);
    std::ostringstream OS;
    printPredictReport(OS, "predict-test", R);
    if (Baseline.empty()) {
      Baseline = OS.str();
      EXPECT_GT(R.Cycles.size(), 1u) << "want a shardable cycle list";
    } else {
      EXPECT_EQ(OS.str(), Baseline) << "jobs=" << Jobs;
    }
  }
}

// -- Cross-engine agreement on randomized traces -----------------------------

struct Lcg {
  uint64_t S;
  explicit Lcg(uint64_t Seed) : S(Seed) {}
  uint64_t next() { return S = S * 6364136223846793005ULL + 1442695040888963407ULL; }
  uint64_t below(uint64_t N) { return (next() >> 33) % N; }
};

/// Random nested lock walks, one thread at a time (a legal serialized
/// schedule, like the recorder's), over a small shared lock pool.
TraceFile randomTrace(uint64_t Seed) {
  Lcg R(Seed);
  TB B;
  const uint64_t Workers = 3 + R.below(3);
  B.thread(1);
  for (uint64_t T = 2; T < 2 + Workers; ++T)
    B.thread(T).fork(1, T);
  const uint64_t Locks = 4;
  for (uint64_t L = 0; L != Locks; ++L)
    B.lock(10 + L, "m" + std::to_string(L));
  for (uint64_t T = 2; T < 2 + Workers; ++T) {
    for (unsigned Session = 0; Session != 3; ++Session) {
      std::vector<uint64_t> Held;
      uint64_t Depth = 1 + R.below(3);
      for (uint64_t D = 0; D != Depth && Held.size() != Locks; ++D) {
        uint64_t L = 10 + R.below(Locks);
        bool Dup = false;
        for (uint64_t H : Held)
          Dup |= H == L;
        if (Dup)
          continue;
        B.acq(T, L);
        Held.push_back(L);
      }
      while (!Held.empty()) {
        B.rel(T, Held.back());
        Held.pop_back();
      }
    }
  }
  return B.Trace;
}

TEST(Predict, AgreesWithIGoodlockAndPrunerOnRandomTraces) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    TraceFile Trace = randomTrace(Seed);
    PredictAnalysis R = predictDeadlocks(Trace);
    ASSERT_EQ(R.Predictions.size(), R.Cycles.size()) << "seed " << Seed;

    IncrementalLogBuilder Builder(nullptr);
    Builder.feed(Trace.Events);
    IGoodlockOptions Keep;
    Keep.KeepGuardedCycles = true;
    std::set<std::string> Enumerated;
    for (const AbstractCycle &C : runIGoodlock(Builder.log(), Keep))
      Enumerated.insert(C.toString());
    std::vector<CycleClassification> Pruned =
        classifyCycles(Builder.log(), R.Cycles);
    ASSERT_EQ(Pruned.size(), R.Cycles.size()) << "seed " << Seed;

    for (size_t I = 0; I != R.Cycles.size(); ++I) {
      // Sound cycles never escape the iGoodlock enumeration: prediction
      // grades candidates, it cannot invent them.
      if (R.Predictions[I].sound())
        EXPECT_EQ(Enumerated.count(R.Cycles[I].toString()), 1u)
            << "seed " << Seed << " cycle " << I;
      // Prediction discharges at least what the pruner discharges: a
      // pruner-infeasible cycle must never be certified sound.
      if (!Pruned[I].schedulable())
        EXPECT_FALSE(R.Predictions[I].sound())
            << "seed " << Seed << " cycle " << I << ": pruner says "
            << Pruned[I].label() << " but predict says "
            << R.Predictions[I].label();
      if (R.Predictions[I].sound())
        EXPECT_GT(R.Predictions[I].WitnessEvents, 0u);
      else
        EXPECT_FALSE(R.Predictions[I].Reason.empty());
    }

    // Verdicts are a pure function of the trace: reports agree across an
    // arbitrary worker count.
    IGoodlockOptions Closure;
    Closure.AnalysisJobs = 3;
    PredictOptions Opts;
    Opts.Jobs = 3;
    PredictAnalysis R3 = predictDeadlocks(Trace, Closure, Opts);
    std::ostringstream A, C;
    printPredictReport(A, "predict-test", R);
    printPredictReport(C, "predict-test", R3);
    EXPECT_EQ(A.str(), C.str()) << "seed " << Seed;
  }
}

} // namespace
