//===- tests/SchedulerTest.cpp - Active scheduler behaviours -----------------===//
//
// Exercises the paper-specific scheduler mechanics: stall detection
// (Algorithm 2's "System Stall!"), checkRealDeadlock firing before the
// physical wedge (Algorithm 3), pausing/thrashing, the livelock monitor,
// and the §4 yield machinery.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/CycleSpec.h"
#include "fuzzer/DeadlockFuzzerStrategy.h"
#include "fuzzer/RandomStrategy.h"
#include "runtime/ConditionVariable.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/RwLock.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace {

using namespace dlf;

/// A program that deadlocks under *every* schedule: the two threads
/// rendezvous via flags before taking their second locks.
void guaranteedDeadlock() {
  Mutex A("ga", DLF_SITE());
  Mutex B("gb", DLF_SITE());
  bool T1HasA = false, T2HasB = false;

  Thread T1([&] {
    MutexGuard First(A, DLF_NAMED_SITE("gd:t1a"));
    T1HasA = true;
    while (!T2HasB)
      yieldNow();
    MutexGuard Second(B, DLF_NAMED_SITE("gd:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("gd:t2b"));
    T2HasB = true;
    while (!T1HasA)
      yieldNow();
    MutexGuard Second(A, DLF_NAMED_SITE("gd:t2a"));
  });
  T1.join();
  T2.join();
}

TEST(SchedulerStall, SimpleRandomDetectsGuaranteedDeadlock) {
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = Seed;
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run(guaranteedDeadlock);
    EXPECT_FALSE(R.Completed);
    EXPECT_TRUE(R.Stalled) << "seed " << Seed;
    ASSERT_TRUE(R.Witness.has_value()) << "stall witness missing";
    EXPECT_EQ(R.Witness->Edges.size(), 2u);
  }
}

TEST(SchedulerStall, WitnessNamesTheRightLocks) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run(guaranteedDeadlock);
  ASSERT_TRUE(R.Witness.has_value());
  std::string Text = R.Witness->toString();
  EXPECT_NE(Text.find("ga"), std::string::npos) << Text;
  EXPECT_NE(Text.find("gb"), std::string::npos) << Text;
}

TEST(SchedulerStall, AbortUnwindsAllThreadsCleanly) {
  // After a stall abort, the runtime must still tear everything down: no
  // hangs, no leaked OS threads (the test would hang or crash otherwise).
  for (int Round = 0; Round != 10; ++Round) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = 100 + static_cast<uint64_t>(Round);
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run(guaranteedDeadlock);
    EXPECT_TRUE(R.Stalled);
  }
}

TEST(SchedulerLivelock, MaxStepsAborts) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  Opts.MaxSteps = 500;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run([] {
    Mutex M("spin", DLF_SITE());
    for (;;) {
      MutexGuard Guard(M, DLF_NAMED_SITE("spin:acq"));
      yieldNow();
    }
  });
  EXPECT_FALSE(R.Completed);
  EXPECT_TRUE(R.LivelockAborted);
}

TEST(SchedulerLivelock, WallClockFallbackRescuesPausedThread) {
  // A peer spending real time between scheduling points commits no steps,
  // so the step-count bound alone (here effectively disabled) would leave
  // a paused thread paused for the whole compute stretch. The wall-clock
  // fallback must release it.
  std::atomic<bool> T1HoldsA{false};
  auto SlowPeerProgram = [&] {
    T1HoldsA = false;
    Mutex A("wa", DLF_SITE());
    Mutex B("wb", DLF_SITE());
    Thread T1([&] {
      MutexGuard First(A, DLF_NAMED_SITE("wall:t1a"));
      T1HoldsA = true;
      MutexGuard Second(B, DLF_NAMED_SITE("wall:t1b"));
    });
    Thread T2([&] {
      while (!T1HoldsA)
        yieldNow();
      // Long compute: real time passes, no scheduling points commit.
      for (int I = 0; I != 30; ++I) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        yieldNow();
      }
      MutexGuard First(B, DLF_NAMED_SITE("wall:t2b"));
      MutexGuard Second(A, DLF_NAMED_SITE("wall:t2a"));
    });
    T1.join();
    T2.join();
  };

  ActiveTesterConfig Config;
  Config.Base.MaxPausedSteps = 1'000'000'000; // step bound out of the picture
  Config.Base.MaxPausedWallMs = 40;
  ActiveTester Tester(SlowPeerProgram, Config);
  PhaseOneResult P1 = Tester.runPhaseOne();
  ASSERT_EQ(P1.Cycles.size(), 1u);

  // Phase 2: T1 pauses at its second acquire while T2 sits in the compute
  // loop; only the wall clock can notice the pause has gone stale.
  ExecutionResult R = Tester.runOnce(P1.Cycles[0], /*Seed=*/1);
  EXPECT_TRUE(R.Completed || R.DeadlockFound) << "stalled instead of rescued";
  EXPECT_GT(R.ForcedUnpauses, 0u);
}

// -- Algorithm 3 mechanics through the ActiveTester ----------------------------------

/// Figure 1-style ABBA with a stagger, as a reusable program.
void abbaProgram() {
  Mutex A("aa", DLF_SITE());
  Mutex B("ab", DLF_SITE());
  Thread T1([&] {
    for (int I = 0; I != 4; ++I)
      yieldNow();
    MutexGuard First(A, DLF_NAMED_SITE("abba:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("abba:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("abba:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("abba:t2a"));
  });
  T1.join();
  T2.join();
}

TEST(DeadlockFuzzer, ChecksFireBeforePhysicalWedge) {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  ActiveTester Tester(abbaProgram, Config);
  PhaseOneResult P1 = Tester.runPhaseOne();
  ASSERT_EQ(P1.Cycles.size(), 1u);
  for (unsigned Rep = 0; Rep != 10; ++Rep) {
    ExecutionResult R = Tester.runOnce(P1.Cycles[0], 1000 + Rep);
    EXPECT_TRUE(R.DeadlockFound) << "rep " << Rep;
    EXPECT_FALSE(R.Stalled) << "checker must fire before the stall";
    ASSERT_TRUE(R.Witness.has_value());
    EXPECT_EQ(R.Witness->Edges.size(), 2u);
  }
}

TEST(DeadlockFuzzer, CleanReproductionNeedsNoThrashing) {
  // Once one participant is paused at its component, the other's acquire
  // closes the cycle in checkRealDeadlock (paused threads' pending locks
  // count as wait-for edges) — Table 1's logging/DBCP rows reproduce with
  // 0.00 average thrashes.
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  ActiveTester Tester(abbaProgram, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_EQ(Report.PerCycle.size(), 1u);
  const CycleFuzzStats &Stats = Report.PerCycle[0];
  EXPECT_EQ(Stats.ReproducedTarget, Stats.Runs);
  EXPECT_EQ(Stats.TotalThrashes, 0u);
}

TEST(DeadlockFuzzer, PausedThreadsResumePastTheirAcquire) {
  // If the pause were re-evaluated after a thrash removal (instead of the
  // thread executing through), this would livelock; completion of every
  // rep proves force-execution works.
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 8;
  ActiveTester Tester(abbaProgram, Config);
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PerCycle[0].ReproducedTarget +
                Report.PerCycle[0].OtherDeadlocks +
                Report.PerCycle[0].Stalls + Report.PerCycle[0].CleanRuns,
            Report.PerCycle[0].Runs);
}

TEST(DeadlockFuzzer, NoFalseAlarmOnOrderedProgram) {
  // Fuzzing a cycle spec against a *fixed* program (consistent order)
  // must never report a deadlock: first find the cycle in the buggy
  // program, then run its spec against the fixed one.
  ActiveTesterConfig Config;
  ActiveTester Buggy(abbaProgram, Config);
  PhaseOneResult P1 = Buggy.runPhaseOne();
  ASSERT_EQ(P1.Cycles.size(), 1u);

  auto FixedProgram = [] {
    Mutex A("fa", DLF_SITE());
    Mutex B("fb", DLF_SITE());
    Thread T1([&] {
      MutexGuard First(A, DLF_NAMED_SITE("fixed:t1a"));
      MutexGuard Second(B, DLF_NAMED_SITE("fixed:t1b"));
    });
    Thread T2([&] {
      MutexGuard First(A, DLF_NAMED_SITE("fixed:t2a"));
      MutexGuard Second(B, DLF_NAMED_SITE("fixed:t2b"));
    });
    T1.join();
    T2.join();
  };
  ActiveTester Fixed(FixedProgram, Config);
  for (unsigned Rep = 0; Rep != 10; ++Rep) {
    ExecutionResult R = Fixed.runOnce(P1.Cycles[0], 2000 + Rep);
    EXPECT_TRUE(R.Completed);
    EXPECT_FALSE(R.DeadlockFound);
  }
}

TEST(DeadlockFuzzer, LivelockMonitorRescuesLonePausedThread) {
  // One thread matches a cycle component but its partner never shows up:
  // the pause must not hang the run (thrash handling / monitor releases
  // it) and no deadlock is reported.
  ActiveTesterConfig Config;
  ActiveTester Buggy(abbaProgram, Config);
  PhaseOneResult P1 = Buggy.runPhaseOne();
  ASSERT_EQ(P1.Cycles.size(), 1u);

  auto HalfProgram = [] {
    Mutex A("ha", DLF_SITE());
    Mutex B("hb", DLF_SITE());
    Thread T1([&] {
      for (int I = 0; I != 4; ++I)
        yieldNow();
      MutexGuard First(A, DLF_NAMED_SITE("abba:t1a"));
      MutexGuard Second(B, DLF_NAMED_SITE("abba:t1b"));
    });
    T1.join();
  };
  // Note: the half program's thread/lock abstractions differ from the
  // original (different creation paths), so the spec may not even match;
  // either way the run must complete.
  ActiveTester Half(HalfProgram, Config);
  ExecutionResult R = Half.runOnce(P1.Cycles[0], 1);
  EXPECT_TRUE(R.Completed);
  EXPECT_FALSE(R.DeadlockFound);
}

// -- §4 yields -------------------------------------------------------------------------

/// The paper's §4 example: thread2 passes a gate on l1 before its own
/// inversion; pausing thread1 too early wedges the gate.
void gateProgram() {
  Mutex L1("gate-l1", DLF_SITE());
  Mutex L2("gate-l2", DLF_SITE());
  Thread T1([&] {
    MutexGuard Outer(L1, DLF_NAMED_SITE("gate:t1l1"));
    MutexGuard Inner(L2, DLF_NAMED_SITE("gate:t1l2"));
  });
  Thread T2([&] {
    {
      MutexGuard Gate(L1, DLF_NAMED_SITE("gate:t2gate"));
    }
    MutexGuard Outer(L2, DLF_NAMED_SITE("gate:t2l2"));
    MutexGuard Inner(L1, DLF_NAMED_SITE("gate:t2l1"));
  });
  T1.join();
  T2.join();
}

TEST(YieldOptimization, ImprovesGateProgramReproduction) {
  ActiveTesterConfig WithYields;
  WithYields.PhaseTwoReps = 30;
  WithYields.Base.UseYields = true;
  ActiveTester TesterYes(gateProgram, WithYields);
  ActiveTesterReport Yes = TesterYes.run();
  ASSERT_EQ(Yes.PerCycle.size(), 1u);

  ActiveTesterConfig NoYields = WithYields;
  NoYields.Base.UseYields = false;
  ActiveTester TesterNo(gateProgram, NoYields);
  ActiveTesterReport No = TesterNo.run();
  ASSERT_EQ(No.PerCycle.size(), 1u);

  // §4's claim: with yields the deadlock is created (probability ~1);
  // without them the gate wedges and the probability drops.
  EXPECT_GT(Yes.PerCycle[0].probability(), 0.9)
      << "yields: " << Yes.PerCycle[0].probability();
  EXPECT_LT(No.PerCycle[0].probability(),
            Yes.PerCycle[0].probability())
      << "no-yields should underperform";
}

// -- Widened alphabet: rwlocks, trylock probes, condvar wakeup edges -----------

TEST(WidenedAlphabet, ReadReadOverlapIsSchedulable) {
  // Two readers rendezvous *while both hold the shared side*: the program
  // only terminates if a paused/blocked reader stays enabled when the lock
  // is held by readers alone. A mutex-shaped model would stall here.
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = Seed;
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run([] {
      RwLock Table("table", DLF_SITE());
      bool R1In = false, R2In = false;
      Thread T1([&] {
        RwReadGuard G(Table, DLF_NAMED_SITE("rr:t1"));
        R1In = true;
        while (!R2In)
          yieldNow();
      });
      Thread T2([&] {
        RwReadGuard G(Table, DLF_NAMED_SITE("rr:t2"));
        R2In = true;
        while (!R1In)
          yieldNow();
      });
      T1.join();
      T2.join();
    });
    EXPECT_TRUE(R.Completed) << "seed " << Seed;
    EXPECT_FALSE(R.Stalled) << "seed " << Seed;
  }
}

TEST(WidenedAlphabet, ReaderHeldAbbaStallsWithWitness) {
  // Each thread holds one lock on the read side and wants the other on the
  // write side; the rendezvous flags make the inversion unconditional. The
  // stall detector must produce the two-edge wait-for witness even though
  // the held edges are shared-mode.
  Options Opts;
  Opts.Mode = RunMode::Active;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run([] {
    RwLock A("rwa", DLF_SITE());
    RwLock B("rwb", DLF_SITE());
    bool T1HasA = false, T2HasB = false;
    Thread T1([&] {
      RwReadGuard First(A, DLF_NAMED_SITE("rwabba:t1a"));
      T1HasA = true;
      while (!T2HasB)
        yieldNow();
      RwWriteGuard Second(B, DLF_NAMED_SITE("rwabba:t1b"));
    });
    Thread T2([&] {
      RwReadGuard First(B, DLF_NAMED_SITE("rwabba:t2b"));
      T2HasB = true;
      while (!T1HasA)
        yieldNow();
      RwWriteGuard Second(A, DLF_NAMED_SITE("rwabba:t2a"));
    });
    T1.join();
    T2.join();
  });
  EXPECT_FALSE(R.Completed);
  EXPECT_TRUE(R.Stalled);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_EQ(R.Witness->Edges.size(), 2u);
  std::string Text = R.Witness->toString();
  EXPECT_NE(Text.find("rwa"), std::string::npos) << Text;
  EXPECT_NE(Text.find("rwb"), std::string::npos) << Text;
}

TEST(WidenedAlphabet, FailedTryLockIsANonBlockingProbe) {
  // Probing a write-held lock from another thread must neither block nor
  // wedge the run; both the exclusive and the shared probe count.
  Options Opts;
  Opts.Mode = RunMode::Active;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  bool WriteProbeHit = false, ReadProbeHit = false;
  ExecutionResult R = RT.run([&] {
    RwLock L("probe", DLF_SITE());
    bool Held = false, Probed = false;
    Thread Holder([&] {
      RwWriteGuard G(L, DLF_NAMED_SITE("probe:holder"));
      Held = true;
      while (!Probed)
        yieldNow();
    });
    Thread Prober([&] {
      while (!Held)
        yieldNow();
      WriteProbeHit = L.tryLock(DLF_NAMED_SITE("probe:try-write"));
      if (WriteProbeHit)
        L.unlock();
      ReadProbeHit = L.tryLockShared(DLF_NAMED_SITE("probe:try-read"));
      if (ReadProbeHit)
        L.unlockShared();
      Probed = true;
    });
    Holder.join();
    Prober.join();
  });
  EXPECT_TRUE(R.Completed);
  EXPECT_FALSE(WriteProbeHit);
  EXPECT_FALSE(ReadProbeHit);
  EXPECT_GE(R.TryProbes, 2u);
}

TEST(WidenedAlphabet, UnnotifiedWaiterIsACommunicationStall) {
  // A waiter nobody signals leaves no runnable thread: the scheduler must
  // report a stall flagged as communication-induced, not a lock deadlock,
  // and must not hand the blocked thread a wait-for edge.
  Options Opts;
  Opts.Mode = RunMode::Active;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run([] {
    Mutex M("cm", DLF_SITE());
    ConditionVariable Never("never");
    Thread Waiter([&] {
      MutexGuard G(M, DLF_NAMED_SITE("cs:lock"));
      Never.wait(M, DLF_NAMED_SITE("cs:reacquire"));
    });
    Waiter.join();
  });
  EXPECT_FALSE(R.Completed);
  EXPECT_TRUE(R.Stalled);
  EXPECT_TRUE(R.CommunicationStall);
  EXPECT_FALSE(R.DeadlockFound);
}

/// Minimal cond-wait reacquire inversion (the condvar-hybrid shape): both
/// threads take state->journal in program order; the only inverted edge is
/// the wait's reacquire of the state lock with the journal held.
void condReacquireProgram() {
  Mutex State("crState", DLF_SITE());
  Mutex Journal("crJournal", DLF_SITE());
  ConditionVariable Drained("crDrained");
  bool Parked = false, DrainedFlag = false;

  Thread Flusher([&] {
    MutexGuard S(State, DLF_NAMED_SITE("cr:flusher-state"));
    MutexGuard J(Journal, DLF_NAMED_SITE("cr:flusher-journal"));
    Parked = true;
    Drained.waitUntil(State, [&] { return DrainedFlag; },
                      DLF_NAMED_SITE("cr:flusher-reacquire"));
  });
  Thread Producer([&] {
    for (;;) {
      bool SawParked;
      {
        MutexGuard S(State, DLF_NAMED_SITE("cr:producer-drain"));
        SawParked = Parked;
        if (SawParked) {
          DrainedFlag = true;
          Drained.notifyOne();
        }
      }
      if (SawParked)
        break;
      yieldNow();
    }
    for (int I = 0; I != 12; ++I)
      yieldNow();
    MutexGuard S(State, DLF_NAMED_SITE("cr:producer-state"));
    MutexGuard J(Journal, DLF_NAMED_SITE("cr:producer-journal"));
  });
  Flusher.join();
  Producer.join();
}

TEST(WidenedAlphabet, CondReacquireCycleIsFoundAndConfirmed) {
  // Phase I must record the reacquire as an acquire under the journal (the
  // only way the cycle enters the dependency relation), and Phase II must
  // be able to *pause* the notified waiter right before it re-enters the
  // state lock — the reacquire path goes through shouldPause like any
  // other acquire.
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 8;
  ActiveTester Tester(condReacquireProgram, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_EQ(Report.PhaseOne.Cycles.size(), 1u) << Report.toString();
  EXPECT_EQ(Report.confirmedCycles(), 1u) << Report.toString();
  EXPECT_EQ(Report.PerCycle[0].ReproducedTarget, Report.PerCycle[0].Runs)
      << Report.toString();
}

} // namespace
