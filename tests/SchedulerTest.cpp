//===- tests/SchedulerTest.cpp - Active scheduler behaviours -----------------===//
//
// Exercises the paper-specific scheduler mechanics: stall detection
// (Algorithm 2's "System Stall!"), checkRealDeadlock firing before the
// physical wedge (Algorithm 3), pausing/thrashing, the livelock monitor,
// and the §4 yield machinery.
//
//===----------------------------------------------------------------------===//

#include "fuzzer/ActiveTester.h"
#include "fuzzer/CycleSpec.h"
#include "fuzzer/DeadlockFuzzerStrategy.h"
#include "fuzzer/RandomStrategy.h"
#include "runtime/Mutex.h"
#include "runtime/Runtime.h"
#include "runtime/Thread.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace {

using namespace dlf;

/// A program that deadlocks under *every* schedule: the two threads
/// rendezvous via flags before taking their second locks.
void guaranteedDeadlock() {
  Mutex A("ga", DLF_SITE());
  Mutex B("gb", DLF_SITE());
  bool T1HasA = false, T2HasB = false;

  Thread T1([&] {
    MutexGuard First(A, DLF_NAMED_SITE("gd:t1a"));
    T1HasA = true;
    while (!T2HasB)
      yieldNow();
    MutexGuard Second(B, DLF_NAMED_SITE("gd:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("gd:t2b"));
    T2HasB = true;
    while (!T1HasA)
      yieldNow();
    MutexGuard Second(A, DLF_NAMED_SITE("gd:t2a"));
  });
  T1.join();
  T2.join();
}

TEST(SchedulerStall, SimpleRandomDetectsGuaranteedDeadlock) {
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = Seed;
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run(guaranteedDeadlock);
    EXPECT_FALSE(R.Completed);
    EXPECT_TRUE(R.Stalled) << "seed " << Seed;
    ASSERT_TRUE(R.Witness.has_value()) << "stall witness missing";
    EXPECT_EQ(R.Witness->Edges.size(), 2u);
  }
}

TEST(SchedulerStall, WitnessNamesTheRightLocks) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run(guaranteedDeadlock);
  ASSERT_TRUE(R.Witness.has_value());
  std::string Text = R.Witness->toString();
  EXPECT_NE(Text.find("ga"), std::string::npos) << Text;
  EXPECT_NE(Text.find("gb"), std::string::npos) << Text;
}

TEST(SchedulerStall, AbortUnwindsAllThreadsCleanly) {
  // After a stall abort, the runtime must still tear everything down: no
  // hangs, no leaked OS threads (the test would hang or crash otherwise).
  for (int Round = 0; Round != 10; ++Round) {
    Options Opts;
    Opts.Mode = RunMode::Active;
    Opts.Seed = 100 + static_cast<uint64_t>(Round);
    SimpleRandomStrategy Strategy;
    Runtime RT(Opts, &Strategy);
    ExecutionResult R = RT.run(guaranteedDeadlock);
    EXPECT_TRUE(R.Stalled);
  }
}

TEST(SchedulerLivelock, MaxStepsAborts) {
  Options Opts;
  Opts.Mode = RunMode::Active;
  Opts.MaxSteps = 500;
  SimpleRandomStrategy Strategy;
  Runtime RT(Opts, &Strategy);
  ExecutionResult R = RT.run([] {
    Mutex M("spin", DLF_SITE());
    for (;;) {
      MutexGuard Guard(M, DLF_NAMED_SITE("spin:acq"));
      yieldNow();
    }
  });
  EXPECT_FALSE(R.Completed);
  EXPECT_TRUE(R.LivelockAborted);
}

TEST(SchedulerLivelock, WallClockFallbackRescuesPausedThread) {
  // A peer spending real time between scheduling points commits no steps,
  // so the step-count bound alone (here effectively disabled) would leave
  // a paused thread paused for the whole compute stretch. The wall-clock
  // fallback must release it.
  std::atomic<bool> T1HoldsA{false};
  auto SlowPeerProgram = [&] {
    T1HoldsA = false;
    Mutex A("wa", DLF_SITE());
    Mutex B("wb", DLF_SITE());
    Thread T1([&] {
      MutexGuard First(A, DLF_NAMED_SITE("wall:t1a"));
      T1HoldsA = true;
      MutexGuard Second(B, DLF_NAMED_SITE("wall:t1b"));
    });
    Thread T2([&] {
      while (!T1HoldsA)
        yieldNow();
      // Long compute: real time passes, no scheduling points commit.
      for (int I = 0; I != 30; ++I) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        yieldNow();
      }
      MutexGuard First(B, DLF_NAMED_SITE("wall:t2b"));
      MutexGuard Second(A, DLF_NAMED_SITE("wall:t2a"));
    });
    T1.join();
    T2.join();
  };

  ActiveTesterConfig Config;
  Config.Base.MaxPausedSteps = 1'000'000'000; // step bound out of the picture
  Config.Base.MaxPausedWallMs = 40;
  ActiveTester Tester(SlowPeerProgram, Config);
  PhaseOneResult P1 = Tester.runPhaseOne();
  ASSERT_EQ(P1.Cycles.size(), 1u);

  // Phase 2: T1 pauses at its second acquire while T2 sits in the compute
  // loop; only the wall clock can notice the pause has gone stale.
  ExecutionResult R = Tester.runOnce(P1.Cycles[0], /*Seed=*/1);
  EXPECT_TRUE(R.Completed || R.DeadlockFound) << "stalled instead of rescued";
  EXPECT_GT(R.ForcedUnpauses, 0u);
}

// -- Algorithm 3 mechanics through the ActiveTester ----------------------------------

/// Figure 1-style ABBA with a stagger, as a reusable program.
void abbaProgram() {
  Mutex A("aa", DLF_SITE());
  Mutex B("ab", DLF_SITE());
  Thread T1([&] {
    for (int I = 0; I != 4; ++I)
      yieldNow();
    MutexGuard First(A, DLF_NAMED_SITE("abba:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("abba:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("abba:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("abba:t2a"));
  });
  T1.join();
  T2.join();
}

TEST(DeadlockFuzzer, ChecksFireBeforePhysicalWedge) {
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  ActiveTester Tester(abbaProgram, Config);
  PhaseOneResult P1 = Tester.runPhaseOne();
  ASSERT_EQ(P1.Cycles.size(), 1u);
  for (unsigned Rep = 0; Rep != 10; ++Rep) {
    ExecutionResult R = Tester.runOnce(P1.Cycles[0], 1000 + Rep);
    EXPECT_TRUE(R.DeadlockFound) << "rep " << Rep;
    EXPECT_FALSE(R.Stalled) << "checker must fire before the stall";
    ASSERT_TRUE(R.Witness.has_value());
    EXPECT_EQ(R.Witness->Edges.size(), 2u);
  }
}

TEST(DeadlockFuzzer, CleanReproductionNeedsNoThrashing) {
  // Once one participant is paused at its component, the other's acquire
  // closes the cycle in checkRealDeadlock (paused threads' pending locks
  // count as wait-for edges) — Table 1's logging/DBCP rows reproduce with
  // 0.00 average thrashes.
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 10;
  ActiveTester Tester(abbaProgram, Config);
  ActiveTesterReport Report = Tester.run();
  ASSERT_EQ(Report.PerCycle.size(), 1u);
  const CycleFuzzStats &Stats = Report.PerCycle[0];
  EXPECT_EQ(Stats.ReproducedTarget, Stats.Runs);
  EXPECT_EQ(Stats.TotalThrashes, 0u);
}

TEST(DeadlockFuzzer, PausedThreadsResumePastTheirAcquire) {
  // If the pause were re-evaluated after a thrash removal (instead of the
  // thread executing through), this would livelock; completion of every
  // rep proves force-execution works.
  ActiveTesterConfig Config;
  Config.PhaseTwoReps = 8;
  ActiveTester Tester(abbaProgram, Config);
  ActiveTesterReport Report = Tester.run();
  EXPECT_EQ(Report.PerCycle[0].ReproducedTarget +
                Report.PerCycle[0].OtherDeadlocks +
                Report.PerCycle[0].Stalls + Report.PerCycle[0].CleanRuns,
            Report.PerCycle[0].Runs);
}

TEST(DeadlockFuzzer, NoFalseAlarmOnOrderedProgram) {
  // Fuzzing a cycle spec against a *fixed* program (consistent order)
  // must never report a deadlock: first find the cycle in the buggy
  // program, then run its spec against the fixed one.
  ActiveTesterConfig Config;
  ActiveTester Buggy(abbaProgram, Config);
  PhaseOneResult P1 = Buggy.runPhaseOne();
  ASSERT_EQ(P1.Cycles.size(), 1u);

  auto FixedProgram = [] {
    Mutex A("fa", DLF_SITE());
    Mutex B("fb", DLF_SITE());
    Thread T1([&] {
      MutexGuard First(A, DLF_NAMED_SITE("fixed:t1a"));
      MutexGuard Second(B, DLF_NAMED_SITE("fixed:t1b"));
    });
    Thread T2([&] {
      MutexGuard First(A, DLF_NAMED_SITE("fixed:t2a"));
      MutexGuard Second(B, DLF_NAMED_SITE("fixed:t2b"));
    });
    T1.join();
    T2.join();
  };
  ActiveTester Fixed(FixedProgram, Config);
  for (unsigned Rep = 0; Rep != 10; ++Rep) {
    ExecutionResult R = Fixed.runOnce(P1.Cycles[0], 2000 + Rep);
    EXPECT_TRUE(R.Completed);
    EXPECT_FALSE(R.DeadlockFound);
  }
}

TEST(DeadlockFuzzer, LivelockMonitorRescuesLonePausedThread) {
  // One thread matches a cycle component but its partner never shows up:
  // the pause must not hang the run (thrash handling / monitor releases
  // it) and no deadlock is reported.
  ActiveTesterConfig Config;
  ActiveTester Buggy(abbaProgram, Config);
  PhaseOneResult P1 = Buggy.runPhaseOne();
  ASSERT_EQ(P1.Cycles.size(), 1u);

  auto HalfProgram = [] {
    Mutex A("ha", DLF_SITE());
    Mutex B("hb", DLF_SITE());
    Thread T1([&] {
      for (int I = 0; I != 4; ++I)
        yieldNow();
      MutexGuard First(A, DLF_NAMED_SITE("abba:t1a"));
      MutexGuard Second(B, DLF_NAMED_SITE("abba:t1b"));
    });
    T1.join();
  };
  // Note: the half program's thread/lock abstractions differ from the
  // original (different creation paths), so the spec may not even match;
  // either way the run must complete.
  ActiveTester Half(HalfProgram, Config);
  ExecutionResult R = Half.runOnce(P1.Cycles[0], 1);
  EXPECT_TRUE(R.Completed);
  EXPECT_FALSE(R.DeadlockFound);
}

// -- §4 yields -------------------------------------------------------------------------

/// The paper's §4 example: thread2 passes a gate on l1 before its own
/// inversion; pausing thread1 too early wedges the gate.
void gateProgram() {
  Mutex L1("gate-l1", DLF_SITE());
  Mutex L2("gate-l2", DLF_SITE());
  Thread T1([&] {
    MutexGuard Outer(L1, DLF_NAMED_SITE("gate:t1l1"));
    MutexGuard Inner(L2, DLF_NAMED_SITE("gate:t1l2"));
  });
  Thread T2([&] {
    {
      MutexGuard Gate(L1, DLF_NAMED_SITE("gate:t2gate"));
    }
    MutexGuard Outer(L2, DLF_NAMED_SITE("gate:t2l2"));
    MutexGuard Inner(L1, DLF_NAMED_SITE("gate:t2l1"));
  });
  T1.join();
  T2.join();
}

TEST(YieldOptimization, ImprovesGateProgramReproduction) {
  ActiveTesterConfig WithYields;
  WithYields.PhaseTwoReps = 30;
  WithYields.Base.UseYields = true;
  ActiveTester TesterYes(gateProgram, WithYields);
  ActiveTesterReport Yes = TesterYes.run();
  ASSERT_EQ(Yes.PerCycle.size(), 1u);

  ActiveTesterConfig NoYields = WithYields;
  NoYields.Base.UseYields = false;
  ActiveTester TesterNo(gateProgram, NoYields);
  ActiveTesterReport No = TesterNo.run();
  ASSERT_EQ(No.PerCycle.size(), 1u);

  // §4's claim: with yields the deadlock is created (probability ~1);
  // without them the gate wedges and the probability drops.
  EXPECT_GT(Yes.PerCycle[0].probability(), 0.9)
      << "yields: " << Yes.PerCycle[0].probability();
  EXPECT_LT(No.PerCycle[0].probability(),
            Yes.PerCycle[0].probability())
      << "no-yields should underperform";
}

} // namespace
