//===- tests/TelemetryTest.cpp - Unified telemetry subsystem ------------------===//
//
// Exercises the telemetry layer bottom-up: histogram bucket geometry, the
// lock-free thread-sharded counter merge, sidecar round trips including
// truncated files, Chrome trace-event rendering, and the campaign-level
// aggregation contracts — merged counter totals identical for every
// --jobs value, and a crashed child's missing sidecar degrading to a
// counter instead of failing the campaign.
//
//===----------------------------------------------------------------------===//

#include "campaign/CampaignRunner.h"
#include "campaign/Json.h"
#include "runtime/Mutex.h"
#include "runtime/Thread.h"
#include "telemetry/Metrics.h"
#include "telemetry/Sidecar.h"
#include "telemetry/Timeline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace {

using namespace dlf;
using namespace dlf::telemetry;

class TempFile {
public:
  explicit TempFile(const char *Suffix) {
    Path = ::testing::TempDir() + "dlf-telemetry-" +
           std::to_string(getpid()) + "-" + Suffix;
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

/// RAII telemetry arming: tests must not leak the global enabled flag (or
/// global registry contents) into each other.
struct ScopedTelemetry {
  ScopedTelemetry() { setEnabled(true); }
  ~ScopedTelemetry() {
    setEnabled(false);
    Registry::global().reset();
  }
};

// -- Histogram geometry ------------------------------------------------------

TEST(TelemetryHistogram, BucketEdgesArePowersOfTwo) {
  // Bucket 0 holds exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(histBucketFor(0), 0u);
  EXPECT_EQ(histBucketUpperBound(0), 0u);
  EXPECT_EQ(histBucketFor(1), 1u);
  EXPECT_EQ(histBucketFor(2), 2u);
  EXPECT_EQ(histBucketFor(3), 2u);
  EXPECT_EQ(histBucketFor(4), 3u);
  for (unsigned B = 1; B != HistBucketCount - 1; ++B) {
    uint64_t Lo = uint64_t(1) << (B - 1);
    uint64_t Hi = (uint64_t(1) << B) - 1;
    EXPECT_EQ(histBucketFor(Lo), B) << "lower edge of bucket " << B;
    EXPECT_EQ(histBucketFor(Hi), B) << "upper edge of bucket " << B;
    EXPECT_EQ(histBucketUpperBound(B), Hi);
  }
  // The last bucket absorbs everything from 2^62 up.
  EXPECT_EQ(histBucketFor(uint64_t(1) << 62), HistBucketCount - 1);
  EXPECT_EQ(histBucketFor(UINT64_MAX), HistBucketCount - 1);
  EXPECT_EQ(histBucketUpperBound(HistBucketCount - 1), UINT64_MAX);
}

TEST(TelemetryHistogram, PrometheusBucketsAreCumulativeWithExplicitInf) {
  MetricsSnapshot S;
  HistogramData H;
  H.observe(0);
  H.observe(1);
  H.observe(5);
  H.observe(5);
  S.Histograms["dlf_test_hist"] = H;
  std::string Text = S.toPrometheus();
  EXPECT_NE(Text.find("# TYPE dlf_test_hist histogram"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("dlf_test_hist_bucket{le=\"0\"} 1"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("dlf_test_hist_bucket{le=\"1\"} 2"), std::string::npos)
      << Text;
  // 5 lands in bucket 3 ([4,7]); the cumulative count there is all four.
  EXPECT_NE(Text.find("dlf_test_hist_bucket{le=\"7\"} 4"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("dlf_test_hist_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("dlf_test_hist_sum 11"), std::string::npos) << Text;
  EXPECT_NE(Text.find("dlf_test_hist_count 4"), std::string::npos) << Text;
}

// -- Registry ----------------------------------------------------------------

TEST(TelemetryRegistry, ThreadShardedCountersMergeExactly) {
  ScopedTelemetry Arm;
  Registry R;
  Counter C = R.counter("dlf_test_sharded_total");
  constexpr unsigned Threads = 8;
  constexpr unsigned Incs = 10000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&C] {
      for (unsigned I = 0; I != Incs; ++I)
        C.inc();
    });
  for (std::thread &W : Workers)
    W.join();
  // Joined writers are quiescent: retired totals plus live shards must sum
  // to exactly Threads * Incs, with no lost updates.
  MetricsSnapshot S = R.snapshot();
  EXPECT_EQ(S.Counters.at("dlf_test_sharded_total"),
            uint64_t(Threads) * Incs);
}

TEST(TelemetryRegistry, SameNameInternsToTheSameSlot) {
  ScopedTelemetry Arm;
  Registry R;
  Counter A = R.counter("dlf_test_interned_total");
  Counter B = R.counter("dlf_test_interned_total");
  A.inc();
  B.inc(2);
  EXPECT_EQ(R.snapshot().Counters.at("dlf_test_interned_total"), 3u);
}

TEST(TelemetryRegistry, DisabledHandlesRecordNothing) {
  setEnabled(false);
  Registry R;
  Counter C = R.counter("dlf_test_disabled_total");
  C.inc(5);
  Histogram H = R.histogram("dlf_test_disabled_hist");
  H.observe(42);
  MetricsSnapshot S = R.snapshot();
  EXPECT_EQ(S.Counters.at("dlf_test_disabled_total"), 0u);
  EXPECT_EQ(S.Histograms.at("dlf_test_disabled_hist").Count, 0u);
}

TEST(TelemetrySnapshot, MergeAddsCountersAndHistogramsAndMaxesGauges) {
  MetricsSnapshot A;
  A.Counters["c"] = 3;
  A.Gauges["g"] = 7;
  HistogramData HA;
  HA.observe(2);
  A.Histograms["h"] = HA;

  MetricsSnapshot B;
  B.Counters["c"] = 4;
  B.Counters["only_b"] = 1;
  B.Gauges["g"] = 5;
  HistogramData HB;
  HB.observe(2);
  HB.observe(100);
  B.Histograms["h"] = HB;

  A.merge(B);
  EXPECT_EQ(A.Counters.at("c"), 7u);
  EXPECT_EQ(A.Counters.at("only_b"), 1u);
  EXPECT_EQ(A.Gauges.at("g"), 7);
  EXPECT_EQ(A.Histograms.at("h").Count, 3u);
  EXPECT_EQ(A.Histograms.at("h").Sum, 104u);
  EXPECT_EQ(A.Histograms.at("h").Buckets[histBucketFor(2)], 2u);
}

// -- Sidecar -----------------------------------------------------------------

TEST(TelemetrySidecar, RoundTripPreservesSnapshotEventsAndNames) {
  MetricsSnapshot S;
  S.Counters["dlf_test_a_total"] = 7;
  S.Gauges["dlf_test_g"] = 3;
  HistogramData H;
  H.observe(0);
  H.observe(9);
  S.Histograms["dlf_test_h"] = H;

  std::vector<TraceEvent> Events;
  TraceEvent Span;
  Span.Ph = 'X';
  Span.Tid = 2;
  Span.TsUs = 10;
  Span.DurUs = 5;
  Span.Name = "span one"; // names run to end-of-line: spaces survive
  Events.push_back(Span);
  TraceEvent Instant;
  Instant.Ph = 'i';
  Instant.Tid = 1;
  Instant.TsUs = 3;
  Instant.Name = "thrash";
  Events.push_back(Instant);
  std::map<uint32_t, std::string> Names{{1, "worker 1"}};

  TempFile File("roundtrip.sidecar");
  ASSERT_TRUE(writeSidecar(File.path(), S, Events, Names));

  MetricsSnapshot S2;
  std::vector<TraceEvent> E2;
  std::map<uint32_t, std::string> N2;
  bool Complete = false;
  ASSERT_TRUE(readSidecar(File.path(), S2, E2, N2, &Complete));
  EXPECT_TRUE(Complete);
  EXPECT_EQ(S2.Counters, S.Counters);
  EXPECT_EQ(S2.Gauges, S.Gauges);
  EXPECT_EQ(S2.Histograms.at("dlf_test_h").Count, 2u);
  EXPECT_EQ(S2.Histograms.at("dlf_test_h").Sum, 9u);
  ASSERT_EQ(E2.size(), 2u);
  EXPECT_EQ(E2[0].Ph, 'X');
  EXPECT_EQ(E2[0].Name, "span one");
  EXPECT_EQ(E2[0].DurUs, 5u);
  EXPECT_EQ(E2[1].Name, "thrash");
  EXPECT_EQ(N2.at(1), "worker 1");
}

TEST(TelemetrySidecar, TruncatedFileYieldsCompleteLinesWithoutEndMarker) {
  MetricsSnapshot S;
  S.Counters["dlf_test_first_total"] = 1;
  S.Counters["dlf_test_second_total"] = 2;
  TempFile File("truncated.sidecar");
  ASSERT_TRUE(writeSidecar(File.path(), S, {}, {}));

  // Chop the file mid-line, the way a SIGKILLed child would leave it: the
  // "end" marker and the torn final line must both be discarded.
  std::string Contents;
  {
    std::ifstream In(File.path(), std::ios::binary);
    Contents.assign(std::istreambuf_iterator<char>(In),
                    std::istreambuf_iterator<char>());
  }
  size_t SecondLine = Contents.find("c dlf_test_second_total");
  ASSERT_NE(SecondLine, std::string::npos);
  {
    std::ofstream Out(File.path(), std::ios::binary | std::ios::trunc);
    Out << Contents.substr(0, SecondLine + 5);
  }

  MetricsSnapshot S2;
  std::vector<TraceEvent> E2;
  std::map<uint32_t, std::string> N2;
  bool Complete = true;
  ASSERT_TRUE(readSidecar(File.path(), S2, E2, N2, &Complete));
  EXPECT_FALSE(Complete);
  EXPECT_EQ(S2.Counters.count("dlf_test_first_total"), 1u);
  EXPECT_EQ(S2.Counters.count("dlf_test_second_total"), 0u);
}

TEST(TelemetrySidecar, MissingFileReadsAsFailureNotCrash) {
  MetricsSnapshot S;
  std::vector<TraceEvent> E;
  std::map<uint32_t, std::string> N;
  bool Complete = true;
  EXPECT_FALSE(readSidecar("/nonexistent/dlf-telemetry.sidecar", S, E, N,
                           &Complete));
  EXPECT_FALSE(Complete);
  EXPECT_TRUE(S.empty());
}

// -- Timeline ----------------------------------------------------------------

TEST(TelemetryTimeline, RecordsOnlyWhileEnabled) {
  Timeline TL;
  TL.instant("ignored", 0);
  TL.setEnabled(true);
  TL.instant("thrash", 1);
  uint64_t Start = TL.nowUs();
  TL.complete("schedule", 0, Start, TL.nowUs());
  TL.nameThread(1, "w1");
  std::vector<TraceEvent> Events;
  std::map<uint32_t, std::string> Names;
  TL.take(Events, Names);
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Ph, 'i');
  EXPECT_EQ(Events[0].Name, "thrash");
  EXPECT_EQ(Events[1].Ph, 'X');
  EXPECT_EQ(Names.at(1), "w1");
}

TEST(TelemetryTimeline, DroppedEventsSurfaceAsRegistryCounter) {
  ScopedTelemetry Arm;
  Timeline TL;
  TL.setEnabled(true);
  TL.setMaxEvents(4);
  for (int I = 0; I < 5; ++I)
    TL.instant("ev" + std::to_string(I), 0);
  TL.complete("late-span", 0, 0, 1);

  // Two events hit the cap: one instant, one span. Both the local drop
  // count and the scrape-visible counter must see them.
  EXPECT_EQ(TL.dropped(), 2u);
  MetricsSnapshot S = Registry::global().snapshot();
  EXPECT_EQ(S.Counters.at("dlf_timeline_dropped_total"), 2u);

  std::vector<TraceEvent> Events;
  std::map<uint32_t, std::string> Names;
  TL.take(Events, Names);
  EXPECT_EQ(Events.size(), 4u);
}

TEST(TelemetryTimeline, RenderedChromeTraceIsWellFormedJson) {
  std::vector<TraceEvent> Events;
  TraceEvent Instant;
  Instant.Ph = 'i';
  Instant.Pid = 1;
  Instant.Tid = 2;
  Instant.TsUs = 17;
  Instant.Name = "pause:\"we\\ird\"\tname"; // must be JSON-escaped
  Events.push_back(Instant);
  TraceEvent Span;
  Span.Ph = 'X';
  Span.TsUs = 5;
  Span.DurUs = 12;
  Span.Name = "schedule";
  Events.push_back(Span);
  std::map<uint32_t, std::string> Proc{{0, "dlf-run"}, {1, "child"}};
  std::map<uint64_t, std::string> Threads{{(uint64_t(1) << 32) | 2,
                                           "worker \"2\""}};

  std::string Text =
      Timeline::renderChromeTrace(Events, Proc, Threads);
  campaign::JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(campaign::parseJson(Text, Doc, &Error)) << Error << "\n"
                                                      << Text;
  ASSERT_TRUE(Doc.has("traceEvents"));
  unsigned Instants = 0;
  unsigned Spans = 0;
  unsigned Meta = 0;
  for (const campaign::JsonValue &E : Doc["traceEvents"].items()) {
    const std::string &Ph = E["ph"].asString();
    if (Ph == "M") {
      ++Meta;
    } else if (Ph == "i") {
      ++Instants;
      // Escaped name round-trips through a strict JSON parser.
      EXPECT_EQ(E["name"].asString(), "pause:\"we\\ird\"\tname");
      EXPECT_EQ(E["s"].asString(), "t"); // thread-scoped instant
    } else if (Ph == "X") {
      ++Spans;
      EXPECT_EQ(E["dur"].asUInt(), 12u);
    }
  }
  EXPECT_EQ(Instants, 1u);
  EXPECT_EQ(Spans, 1u);
  EXPECT_GE(Meta, 3u); // two process names + one thread name
}

// -- Campaign aggregation ----------------------------------------------------

void telemetryAbbaProgram() {
  Mutex A("tel-a", DLF_SITE());
  Mutex B("tel-b", DLF_SITE());
  Thread T1([&] {
    MutexGuard First(A, DLF_NAMED_SITE("tel:t1a"));
    MutexGuard Second(B, DLF_NAMED_SITE("tel:t1b"));
  });
  Thread T2([&] {
    MutexGuard First(B, DLF_NAMED_SITE("tel:t2b"));
    MutexGuard Second(A, DLF_NAMED_SITE("tel:t2a"));
  });
  T1.join();
  T2.join();
}

campaign::CampaignConfig telemetryConfig(const std::string &JournalPath) {
  campaign::CampaignConfig CC;
  CC.BenchmarkName = "telemetry-test-abba";
  CC.Entry = telemetryAbbaProgram;
  CC.Tester.PhaseTwoReps = 4;
  CC.BackoffBaseMs = 1;
  CC.JournalPath = JournalPath;
  CC.Telemetry = true;
  return CC;
}

TEST(TelemetryCampaign, MergedCounterTotalsAreJobsInvariant) {
  ScopedTelemetry Arm;
  std::map<std::string, uint64_t> Baseline;
  // 0 = hardware concurrency; the merged counter map must be identical to
  // the serial one in every case (the §10 determinism contract — only
  // counters are claimed, not wall-clock histograms or gauges).
  for (unsigned Jobs : {1u, 2u, 4u, 0u}) {
    TempFile Journal(
        ("jobs-" + std::to_string(Jobs) + ".jsonl").c_str());
    campaign::CampaignConfig CC = telemetryConfig(Journal.path());
    CC.Jobs = Jobs;
    campaign::CampaignReport R =
        campaign::CampaignRunner(std::move(CC)).run();
    ASSERT_TRUE(R.Error.empty()) << R.Error;
    ASSERT_TRUE(R.CampaignComplete);
    ASSERT_FALSE(R.Metrics.Counters.empty());
    EXPECT_EQ(R.Metrics.Counters.at("dlf_campaign_reps_total"), 4u);
    if (Jobs == 1)
      Baseline = R.Metrics.Counters;
    else
      EXPECT_EQ(Baseline, R.Metrics.Counters) << "jobs=" << Jobs;
  }
}

TEST(TelemetryCampaign, CrashedChildMissingSidecarDegradesToACounter) {
  ScopedTelemetry Arm;
  TempFile Journal("crash.jsonl");
  campaign::CampaignConfig CC = telemetryConfig(Journal.path());
  CC.MaxRetries = 0;
  // Rep 0's child dies before it can flush a sidecar; the campaign must
  // commit the crash outcome, count the missing sidecar, and keep going.
  CC.ChildFaultHook = [](unsigned, unsigned Rep, unsigned) {
    if (Rep == 0)
      abort();
  };
  campaign::CampaignReport R =
      campaign::CampaignRunner(std::move(CC)).run();
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_TRUE(R.CampaignComplete);
  EXPECT_EQ(R.Metrics.Counters.at("dlf_campaign_reps_total"), 4u);
  EXPECT_GE(R.Metrics.Counters.at("dlf_campaign_sidecars_missing_total"),
            1u);
}

} // namespace
