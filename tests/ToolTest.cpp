//===- tests/ToolTest.cpp - dlf-run CLI end-to-end ----------------------------===//
//
// Drives the built dlf-run binary through real subprocesses: benchmark
// listing, phase-1 cycle counts, the save/load report workflow, variant
// flags, and error handling.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace {

int runCommand(const std::string &Command) {
  int Status = std::system(Command.c_str());
  if (Status == -1 || !WIFEXITED(Status))
    return -1;
  return WEXITSTATUS(Status);
}

std::string captureCommand(const std::string &Command) {
  std::string Output;
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return Output;
  char Buffer[512];
  while (fgets(Buffer, sizeof(Buffer), Pipe))
    Output += Buffer;
  pclose(Pipe);
  return Output;
}

std::string tool() { return DLF_RUN_BIN; }

TEST(DlfRun, ListShowsEveryBenchmark) {
  std::string Out = captureCommand(tool() + " --list");
  for (const char *Name : {"cache4j", "sor", "hedc", "jspider", "jigsaw",
                           "logging", "swing", "dbcp", "collections-lists",
                           "collections-maps"})
    EXPECT_NE(Out.find(Name), std::string::npos) << Name << "\n" << Out;
}

TEST(DlfRun, Phase1OnlyReportsCycleCounts) {
  std::string Out = captureCommand(tool() + " dbcp --phase1-only");
  EXPECT_NE(Out.find("2 potential cycle(s)"), std::string::npos) << Out;
  std::string Clean = captureCommand(tool() + " hedc --phase1-only");
  EXPECT_NE(Clean.find("0 potential cycle(s)"), std::string::npos) << Clean;
}

TEST(DlfRun, FuzzTableShowsReproductions) {
  std::string Out = captureCommand(tool() + " swing --reps 5");
  EXPECT_NE(Out.find("phase 2 (exec-index, context, yields):"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("5/5"), std::string::npos) << Out;
}

TEST(DlfRun, SaveAndLoadCycles) {
  std::string Path = std::string(::testing::TempDir()) + "/dlfrun_cycles.txt";
  std::remove(Path.c_str());
  ASSERT_EQ(runCommand(tool() + " dbcp --phase1-only --save-cycles " + Path +
                       " >/dev/null"),
            0);
  std::string Out =
      captureCommand(tool() + " dbcp --cycles " + Path + " --reps 3");
  EXPECT_NE(Out.find("loaded 2 cycle(s)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("phase 2"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(DlfRun, VariantFlagIsHonored) {
  std::string Out =
      captureCommand(tool() + " swing --reps 2 --variant 5");
  EXPECT_NE(Out.find("no-yields"), std::string::npos) << Out;
  std::string KObj = captureCommand(tool() + " swing --reps 2 --variant 1");
  EXPECT_NE(KObj.find("k-object"), std::string::npos) << KObj;
}

TEST(DlfRun, NormalRunsReportNoDeadlocks) {
  std::string Out = captureCommand(tool() + " logging --normal 5");
  EXPECT_NE(Out.find("uninstrumented runs: 5, deadlocked: 0"),
            std::string::npos)
      << Out;
}

TEST(DlfRun, HbFlagFiltersJigsaw) {
  std::string Plain =
      captureCommand(tool() + " jigsaw --phase1-only --hb off");
  std::string Filtered =
      captureCommand(tool() + " jigsaw --phase1-only --hb fork-join");
  // Fork/join filtering must strictly reduce jigsaw's report (the §5.4
  // false positives disappear) but not empty it.
  auto CycleCount = [](const std::string &Out) {
    size_t Pos = Out.find(" potential cycle(s)");
    size_t Start = Out.rfind(' ', Pos - 1);
    return std::stoul(Out.substr(Start + 1, Pos - Start - 1));
  };
  unsigned long PlainCount = CycleCount(Plain);
  unsigned long FilteredCount = CycleCount(Filtered);
  EXPECT_LT(FilteredCount, PlainCount);
  EXPECT_GT(FilteredCount, 4ul);
  EXPECT_EQ(runCommand(tool() + " jigsaw --hb bogus >/dev/null 2>&1"), 1);
}

TEST(DlfRun, HealReportsCompletions) {
  std::string Out =
      captureCommand(tool() + " dbcp --reps 4 --heal 6 2>/dev/null");
  EXPECT_NE(Out.find("healing: immunity against"), std::string::npos) << Out;
  EXPECT_NE(Out.find("6/6 random executions completed"), std::string::npos)
      << Out;
}

TEST(DlfRun, CampaignCompletesAndResumesFromJournal) {
  std::string Journal = ::testing::TempDir() + "dlfrun-campaign.jsonl";
  std::remove(Journal.c_str());
  std::string Out = captureCommand(tool() + " dbcp --campaign --reps 2" +
                                   " --journal " + Journal);
  EXPECT_NE(Out.find("campaign complete"), std::string::npos) << Out;
  EXPECT_NE(Out.find("reps executed 4"), std::string::npos) << Out;

  // Resuming a completed campaign replays everything from the journal and
  // executes nothing fresh.
  EXPECT_EQ(runCommand(tool() + " dbcp --campaign --reps 2 --resume " +
                       Journal + " >/dev/null 2>&1"),
            0);
  std::string Resumed = captureCommand(
      tool() + " dbcp --campaign --reps 2 --resume " + Journal);
  EXPECT_NE(Resumed.find("reps executed 0, replayed from journal 4"),
            std::string::npos)
      << Resumed;
  // A fingerprint mismatch (different reps) must refuse to resume.
  EXPECT_NE(runCommand(tool() + " dbcp --campaign --reps 5 --resume " +
                       Journal + " >/dev/null 2>&1"),
            0);
  std::remove(Journal.c_str());
}

TEST(DlfRun, ErrorsAreReported) {
  EXPECT_NE(runCommand(tool() + " nonexistent >/dev/null 2>&1"), 0);
  EXPECT_NE(runCommand(tool() + " swing --variant 9 >/dev/null 2>&1"), 0);
  EXPECT_NE(runCommand(tool() + " swing --bogus-flag >/dev/null 2>&1"), 0);
  EXPECT_NE(runCommand(tool() + " swing --cycles /nonexistent/file "
                               ">/dev/null 2>&1"),
            0);
  EXPECT_NE(runCommand(tool() + " >/dev/null 2>&1"), 0);
}

TEST(DlfRun, MalformedNumericFlagsAreUsageErrors) {
  // atoi would have silently turned each of these into 0; strict parsing
  // must reject them with a non-zero exit and a clear message.
  for (const char *Bad :
       {" dbcp --campaign --run-timeout-ms abc", " dbcp --reps -3",
        " dbcp --campaign --jobs junk", " dbcp --seed 12x",
        " dbcp --campaign --budget-s", " dbcp --max-cycle-length 1e3"})
    EXPECT_NE(runCommand(tool() + Bad + " >/dev/null 2>&1"), 0) << Bad;
  std::string Err = captureCommand(
      tool() + " dbcp --campaign --run-timeout-ms abc 2>&1 >/dev/null");
  EXPECT_NE(Err.find("expects a non-negative integer"), std::string::npos)
      << Err;
}

TEST(DlfRun, GuardedCampaignSkipsDischargedCycle) {
  // Phase I on the gate-lock benchmark finds the guarded cycle; Phase II
  // must spend no repetitions on it by default and name the verdict.
  std::string Out =
      captureCommand(tool() + " guarded --campaign --reps 3 --seed 7");
  EXPECT_NE(Out.find("1 potential cycle(s)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("SKIPPED"), std::string::npos) << Out;
  EXPECT_NE(Out.find("statically discharged as guarded (guard lock: "),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("reps executed 0"), std::string::npos) << Out;

  // --include-guarded buys the cycle its repetitions back; with the same
  // seed the total executed reps must strictly exceed the skipping run's.
  std::string Inc = captureCommand(
      tool() + " guarded --campaign --reps 3 --seed 7 --include-guarded");
  EXPECT_NE(Inc.find("reps executed 3"), std::string::npos) << Inc;
  EXPECT_EQ(Inc.find("SKIPPED"), std::string::npos) << Inc;
  // The guard protects the inversion: the cycle can never actually
  // deadlock, so no repetition reproduces it.
  EXPECT_NE(Inc.find("| 0/3"), std::string::npos) << Inc;
}

TEST(DlfRun, ConflictingCampaignFlagsAreRejected) {
  EXPECT_NE(runCommand(tool() + " dbcp --jobs 2 >/dev/null 2>&1"), 0)
      << "--jobs without --campaign";
  EXPECT_NE(runCommand(tool() + " dbcp --include-guarded >/dev/null 2>&1"), 0)
      << "--include-guarded without --campaign";
  EXPECT_NE(runCommand(tool() + " dbcp --campaign --resume a.jsonl "
                                "--journal b.jsonl >/dev/null 2>&1"),
            0)
      << "--resume FILE and --journal FILE conflict";
}

TEST(DlfRun, InjectedRunnerKillLeavesAResumableJournal) {
  std::string Journal = ::testing::TempDir() + "dlfrun-kill.jsonl";
  std::remove(Journal.c_str());
  // The runner SIGKILLs itself right after committing the third rep
  // record — the closest a test can get to a host dying mid-campaign. The
  // shell reports the signal death as 128 + SIGKILL.
  EXPECT_EQ(runCommand(tool() + " dbcp --campaign --reps 3 --journal " +
                       Journal + " --faults runner.kill@3 >/dev/null 2>&1"),
            137);
  // The journal survives as a clean CRC-intact prefix: resuming (without
  // the fault plan) replays the three committed reps and finishes the rest.
  std::string Resumed = captureCommand(
      tool() + " dbcp --campaign --reps 3 --resume " + Journal);
  EXPECT_NE(Resumed.find("campaign complete"), std::string::npos) << Resumed;
  EXPECT_NE(Resumed.find("reps executed 3, replayed from journal 3"),
            std::string::npos)
      << Resumed;
  std::remove(Journal.c_str());
}

TEST(DlfRun, FaultAndChaosFlagsAreValidated) {
  EXPECT_NE(
      runCommand(tool() + " dbcp --faults runner.kill@1 >/dev/null 2>&1"), 0)
      << "--faults without --campaign";
  EXPECT_NE(runCommand(tool() + " dbcp --chaos 3 >/dev/null 2>&1"), 0)
      << "--chaos without --campaign";
  std::string Err = captureCommand(
      tool() + " dbcp --campaign --faults journal.bogus@1 2>&1 >/dev/null");
  EXPECT_NE(Err.find("unknown site"), std::string::npos) << Err;
}

TEST(DlfRun, ChaosCampaignCompletesAndEchoesItsPlan) {
  std::string Journal = ::testing::TempDir() + "dlfrun-chaos.jsonl";
  std::remove(Journal.c_str());
  std::remove((Journal + ".broken").c_str());
  std::string Out = captureCommand(tool() + " dbcp --campaign --reps 2" +
                                   " --run-timeout-ms 2000 --chaos 5" +
                                   " --journal " + Journal + " 2>/dev/null");
  EXPECT_NE(Out.find("chaos plan (seed 5):"), std::string::npos) << Out;
  EXPECT_NE(Out.find("campaign complete"), std::string::npos) << Out;
  std::remove(Journal.c_str());
  std::remove((Journal + ".broken").c_str());
}

TEST(DlfRun, ParallelCampaignMatchesSerialCounts) {
  std::string SerialJ = ::testing::TempDir() + "dlfrun-jobs1.jsonl";
  std::string ParallelJ = ::testing::TempDir() + "dlfrun-jobs4.jsonl";
  std::remove(SerialJ.c_str());
  std::remove(ParallelJ.c_str());
  std::string Serial = captureCommand(tool() + " dbcp --campaign --reps 3" +
                                      " --jobs 1 --journal " + SerialJ);
  std::string Parallel = captureCommand(tool() + " dbcp --campaign --reps 3" +
                                        " --jobs 4 --journal " + ParallelJ);
  // The per-cycle table rows (counts, probabilities) must be byte-identical
  // whatever the worker count.
  auto TableRows = [](const std::string &Out) {
    std::string Rows;
    size_t Pos = 0;
    while ((Pos = Out.find("| #", Pos)) != std::string::npos) {
      size_t End = Out.find('\n', Pos);
      Rows += Out.substr(Pos, End - Pos) + "\n";
      Pos = End;
    }
    return Rows;
  };
  EXPECT_FALSE(TableRows(Serial).empty()) << Serial;
  EXPECT_EQ(TableRows(Serial), TableRows(Parallel)) << Serial << Parallel;
  EXPECT_NE(Parallel.find("reps/s"), std::string::npos) << Parallel;
  EXPECT_NE(Parallel.find("peak 4 concurrent"), std::string::npos) << Parallel;
  EXPECT_NE(Parallel.find("jobs 4"), std::string::npos) << Parallel;
  std::remove(SerialJ.c_str());
  std::remove(ParallelJ.c_str());
}

} // namespace
